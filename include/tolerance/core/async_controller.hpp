// Asynchronous level-2 controller: the CMDP re-solve moved off the decision
// path, wrapped in a controller-health state machine.
//
// The paper's Algorithm 2 assumes the replication LP re-solves inside every
// control cycle.  In a real deployment the solver is a process like any
// other: it can be slow, GC-paused, crashed, or simply wrong (an infeasible
// or NaN-laden re-solve).  AsyncCmdpController runs the re-solve on a
// one-worker util::ThreadPool, warm-started from the previous optimal basis
// (CmdpSolution::basis), and publishes finished tables through a PolicyBuffer
// A/B flip — so the decision path (SystemController::step) never reads a
// half-updated policy and never blocks on the LP.
//
// Controller-health ladder, advanced once per control cycle:
//
//   FRESH     staleness <= staleness_budget: act on the published table.
//   HOLD      staleness_budget < staleness <= fallback_deadline: keep acting
//             on the last epoch, but flag it (telemetry + bench gates watch
//             this).
//   FALLBACK  staleness > fallback_deadline: the re-solver is presumed
//             crashed or hung; degrade to the deterministic Theorem 2
//             threshold structure (solvers::SystemThresholdPolicy — the
//             level-2 analogue of Theorem 1's provably-structured policy).
//   recovery  any fresh epoch flip returns the ladder to FRESH on the next
//             cycle.
//
// Failed re-solves are retried with jittered exponential backoff; a solve
// that comes back poisoned (CmdpSolution::valid_policy() == false) is
// rejected and never flipped into the live table.
//
// Two clock domains:
//  * deterministic == true (simulation lane): a solve requested at cycle t
//    becomes harvestable at cycle t + solve_latency_cycles; begin_cycle
//    joins the background result at exactly that simulated cycle, so
//    episodes are bit-identical at any thread count.
//  * deterministic == false (wall-clock lane): the solver thread publishes
//    the moment it finishes and begin_cycle never waits — this is the mode
//    that proves the decision path cannot be blocked by a hung solver
//    (tests/controller_test.cpp stalls the solve on a condition variable
//    while the cycle loop keeps completing).
//
// Scripted fault hooks (inject_crash / inject_stall / inject_solver_failure)
// are wired to emulation::ScenarioEvent by the scenario runner.
#pragma once

#include <cstdint>
#include <functional>
#include <condition_variable>
#include <map>
#include <mutex>
#include <optional>

#include "tolerance/core/policy_buffer.hpp"
#include "tolerance/solvers/cmdp_lp.hpp"
#include "tolerance/util/rng.hpp"
#include "tolerance/util/thread_pool.hpp"

namespace tolerance::core {

enum class ControllerMode : int {
  Inline = 0,    ///< synchronous solve on the decision path (legacy default)
  Fresh = 1,     ///< acting on a policy within the staleness budget
  Hold = 2,      ///< policy stale; still acting on the last epoch
  Fallback = 3,  ///< solver presumed dead; Thm. 2 threshold failsafe
};

const char* to_string(ControllerMode mode);
/// One-letter tag for trace lines: I / F / H / B.
char mode_letter(ControllerMode mode);

struct AsyncControllerConfig {
  /// Cycles between background re-solve requests in steady state.
  int resolve_period = 5;
  /// Simulated solve latency (deterministic lane): a solve requested at
  /// cycle t publishes at cycle t + solve_latency_cycles.
  int solve_latency_cycles = 1;
  /// FRESH -> HOLD boundary: max cycles since the last epoch flip before the
  /// policy is flagged stale.
  int staleness_budget = 8;
  /// HOLD -> FALLBACK boundary: cycles since the last flip after which the
  /// re-solver is presumed crashed/hung and the threshold failsafe engages.
  int fallback_deadline = 16;
  /// Base (and post-success reset) retry delay after a rejected solve;
  /// doubles per consecutive rejection up to the cap, plus a jitter draw in
  /// [0, current backoff] from a dedicated deterministic stream.
  int retry_backoff_cycles = 2;
  int max_retry_backoff_cycles = 16;
  /// true: cycle-gated harvest (bit-identical episodes); false: publish on
  /// the solver thread, never wait (wall-clock lane).
  bool deterministic = true;
  /// Verify the warm==cold optimum invariant on the first warm-started
  /// background re-solve (runs one extra cold solve on the worker).
  bool verify_warm_optimum = true;
  double warm_optimum_tolerance = 1e-7;
  /// Fallback threshold when the published table carries no Thm. 2
  /// decomposition (beta1 == beta2 == -1): add iff s <= this.
  int fallback_add_threshold = 1;
};

/// Decision-path view of one policy query (wait-free; see policy_at).
struct PolicyQuery {
  ControllerMode mode = ControllerMode::Fresh;
  std::uint64_t epoch = 0;
  int staleness = 0;
  double add_probability = 0.0;  ///< pi(1|s) of the published table
  bool fallback_add = false;     ///< deterministic threshold action
};

struct AsyncControllerStats {
  std::uint64_t policy_epoch = 0;  ///< last published epoch
  long resolves = 0;               ///< accepted background re-solves
  long rejected = 0;               ///< poisoned solves rejected by the guard
  long hold_cycles = 0;
  long fallback_cycles = 0;
  int max_staleness = 0;
};

class AsyncCmdpController {
 public:
  /// Background solve callback: given the warm-start basis of the previous
  /// accepted solution (nullptr on a cold start), return a fresh solution.
  /// Runs on the pool worker; must not throw.
  using SolveFn =
      std::function<solvers::CmdpSolution(const lp::SimplexBasis*)>;

  /// `initial` must satisfy valid_policy(); it is published as epoch 1 and
  /// seeds the warm-start basis chain.
  AsyncCmdpController(const solvers::CmdpSolution& initial, SolveFn solve,
                      AsyncControllerConfig config, std::uint64_t seed);
  ~AsyncCmdpController();

  AsyncCmdpController(const AsyncCmdpController&) = delete;
  AsyncCmdpController& operator=(const AsyncCmdpController&) = delete;

  /// Advance the controller by one control cycle: expire fault windows,
  /// harvest a due background solve (deterministic lane only — waits for
  /// the already-launched worker task, never runs the LP itself on this
  /// thread), launch the next re-solve, and re-grade the FRESH/HOLD/FALLBACK
  /// ladder.  Cycles must be strictly increasing.
  void begin_cycle(long cycle);

  /// Wait-free policy query for the decision path: never takes the
  /// controller mutex, never blocks on the writer (PolicyBuffer::snapshot).
  PolicyQuery policy_at(int s) const;

  ControllerMode mode() const {
    return static_cast<ControllerMode>(
        mode_atomic_.load(std::memory_order_acquire));
  }
  std::uint64_t epoch() const { return buffer_.epoch(); }
  AsyncControllerStats stats() const;

  // Scripted fault injection (wired to emulation::ScenarioEvent).
  /// Controller crash: the in-flight solve is discarded (its late result is
  /// dropped, not published) and no solves run for `duration` cycles
  /// starting at `cycle`; the controller restarts with a cold relaunch.
  void inject_crash(long cycle, long duration);
  /// GC pause: harvests and launches freeze for `duration` cycles starting
  /// at `cycle`; a solve that completes meanwhile parks until the pause
  /// ends.  The decision path keeps running throughout.
  void inject_stall(long cycle, long duration);
  /// Poison the next `count` background solves (they come back infeasible
  /// and must be rejected by the poison guard, triggering jittered retries).
  void inject_solver_failure(int count);

 private:
  struct Pending {
    std::uint64_t id = 0;
    long due_cycle = 0;
  };

  void launch_locked(long cycle);
  /// Accept-or-reject a completed solve.  Requires mu_ held.
  void handle_result_locked(solvers::CmdpSolution result, long cycle);
  static PolicyBuffer::Table make_table(const solvers::CmdpSolution& solution,
                                        std::uint64_t epoch);

  const AsyncControllerConfig config_;
  SolveFn solve_;

  PolicyBuffer buffer_;
  std::atomic<int> mode_atomic_{static_cast<int>(ControllerMode::Fresh)};
  std::atomic<int> staleness_atomic_{0};

  mutable std::mutex mu_;
  std::condition_variable harvest_cv_;
  std::uint64_t request_seq_ = 0;  ///< bumped on crash to orphan in-flight work
  std::optional<Pending> pending_;
  std::map<std::uint64_t, solvers::CmdpSolution> parked_;
  lp::SimplexBasis basis_;
  bool have_basis_ = false;
  bool warm_verified_ = false;
  std::uint64_t epoch_counter_ = 0;
  long cycle_ = 0;
  long last_publish_cycle_ = 0;
  long next_resolve_cycle_ = 0;
  long crashed_until_ = 0;  ///< exclusive: crashed while cycle < this
  long stalled_until_ = 0;
  int fail_next_ = 0;
  int backoff_ = 0;
  Rng retry_rng_;
  AsyncControllerStats stats_;

  // Declared last so it is destroyed first: the pool drains (and joins) any
  // in-flight solve task — which touches the members above — before they
  // are torn down.
  util::ThreadPool pool_{1};
};

}  // namespace tolerance::core
