// End-to-end evaluation harness: wires the emulated testbed, the per-node
// controllers and the system controller together and measures the §III-C
// metrics — average availability T(A), average time-to-recovery T(R) and
// recovery frequency F(R) — exactly as Table 7 / Fig. 12 report them
// (horizon 10^3 steps; unresolved compromises contribute T(R) = horizon).
#pragma once

#include <optional>

#include "tolerance/core/baselines.hpp"
#include "tolerance/core/node_controller.hpp"
#include "tolerance/core/system_controller.hpp"
#include "tolerance/emulation/testbed.hpp"

namespace tolerance::core {

struct EvaluationConfig {
  StrategyKind strategy = StrategyKind::Tolerance;
  int initial_nodes = 3;   ///< N1
  int delta_r = 0;         ///< DeltaR; <= 0 means infinity
  int horizon = 1000;      ///< evaluation steps (60 s each in the paper)
  int f = 1;               ///< tolerance threshold (Prop. 1)
  int max_nodes = 13;      ///< hardware pool (Table 3)
  double recovery_threshold = 0.76;  ///< alpha* for TOLERANCE (Fig. 13b)
  pomdp::NodeParams node_params;     ///< belief-model parameters (Table 8)
  emulation::TestbedConfig testbed;  ///< environment parameters
};

struct EvaluationResult {
  double availability = 0.0;        ///< T(A)
  double time_to_recovery = 0.0;    ///< T(R)
  double recovery_frequency = 0.0;  ///< F(R), recoveries per node-step
  double avg_nodes = 0.0;           ///< mean N_t (operational cost)
  int recoveries = 0;
  int compromises = 0;
  int crashes = 0;
  int additions = 0;
  int evictions = 0;
};

class Evaluator {
 public:
  /// `replication` is the Algorithm 2 strategy (TOLERANCE only; ignored by
  /// the baselines, which use a static replication factor except for
  /// PERIODIC-ADAPTIVE's heuristic rule).
  Evaluator(EvaluationConfig config, emulation::FittedDetector detector,
            std::optional<solvers::CmdpSolution> replication);

  EvaluationResult run(std::uint64_t seed) const;

  /// One emulation trace per entry of `seeds`, sharded across `threads`
  /// workers (<= 0 resolves via util::resolve_threads).  Traces are seeded
  /// independently, so the result vector is bit-identical — entry i equals
  /// run(seeds[i]) — for any thread count and worker interleaving.
  std::vector<EvaluationResult> run_many(
      const std::vector<std::uint64_t>& seeds, int threads = 0) const;

 private:
  EvaluationConfig config_;
  emulation::FittedDetector detector_;
  std::optional<solvers::CmdpSolution> replication_;
};

}  // namespace tolerance::core
