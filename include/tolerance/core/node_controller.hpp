// The local control level of TOLERANCE (§IV, Fig. 1): one node controller
// per node, running in the privileged domain.  It consumes the IDS alert
// stream, maintains the belief state b_{i,t} = P[compromised] via the
// recursion of Appendix A, and decides when to recover the replica with a
// threshold strategy (Thm. 1) under the BTR constraint (6b).
//
// The control step is split into three phases because at most k nodes may
// recover simultaneously (Prop. 1) and the arbitration happens outside the
// controller:
//   observe()  — fold this step's IDS output into the belief;
//   decide()   — the action the strategy wants;
//   commit()   — what actually happened (the granted action), which is what
//                the belief filter must condition on next step.
#pragma once

#include <memory>

#include "tolerance/emulation/estimation.hpp"
#include "tolerance/pomdp/belief.hpp"
#include "tolerance/solvers/threshold_policy.hpp"

namespace tolerance::core {

class NodeController {
 public:
  /// `detector` supplies both the alert binning and the estimated channel Ẑ;
  /// `model` supplies the kernel (2) parameters for the belief prediction.
  NodeController(pomdp::NodeModel model,
                 emulation::FittedDetector detector,
                 solvers::ThresholdPolicy policy);

  /// Phase 1: consume one time-step of IDS output (raw priority-weighted
  /// alerts).  Returns the updated belief.
  double observe(double raw_alerts);

  /// Phase 2: the strategy's desired action at the current belief.
  pomdp::NodeAction decide() const;

  /// True when the BTR constraint (6b) is what forces recovery this step —
  /// such recoveries outrank belief-triggered ones in the k = 1 arbitration.
  bool btr_due() const;

  /// Phase 3: record the action that was actually applied to the replica.
  /// A committed recovery resets the belief to the fresh-node prior b_1 = pA.
  void commit(pomdp::NodeAction applied);

  /// Convenience for single-node use: observe + decide + commit(decide()).
  pomdp::NodeAction step(double raw_alerts);

  /// The node was replaced by the global level: same effect as a recovery.
  void reset();

  double belief() const { return belief_; }
  /// The filtered belief as it stood when the last decision was taken —
  /// before any recovery reset it to pA.
  double pre_decision_belief() const { return pre_decision_belief_; }
  int steps_since_recovery() const { return steps_since_recovery_; }
  const solvers::ThresholdPolicy& policy() const { return policy_; }

 private:
  // Note: no stored BeliefUpdater — it holds references into this object and
  // would dangle under copy/move (controllers live in vectors); observe()
  // constructs the (trivially cheap) updater on the fly instead.
  pomdp::NodeModel model_;
  emulation::FittedDetector detector_;
  solvers::ThresholdPolicy policy_;
  double belief_;
  double pre_decision_belief_;
  int steps_since_recovery_ = 0;
  pomdp::NodeAction last_applied_ = pomdp::NodeAction::Wait;
};

}  // namespace tolerance::core
