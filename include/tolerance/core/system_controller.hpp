// The global control level of TOLERANCE (§IV-V): receives the belief states
// from all node controllers, evicts nodes that stop reporting (crashed), and
// decides when to add a node using the CMDP strategy pi*(a|s) computed by
// Algorithm 2, where the state s_t = floor(sum_i (1 - b_{i,t})) is the
// expected number of healthy nodes (8).
//
// The controller itself runs on a crash-tolerant substrate; see
// tolerance/consensus/raft.hpp and the emulated_cluster example.
#pragma once

#include <optional>
#include <vector>

#include "tolerance/core/async_controller.hpp"
#include "tolerance/solvers/cmdp_lp.hpp"

namespace tolerance::core {

/// Safety limits on the global controller's reconfiguration rate, enforced
/// per control cycle.  Both default to "disabled" so the unconstrained
/// Table 7 evaluation behaviour is unchanged; the scenario harness enables
/// them so the BFT resilience bound survives churn:
///  * at most `f` evictions per cycle (Prop. 1 budget — evicting faster than
///    state transfer can re-populate replicas risks the quorum), and
///  * never shrink the membership below `min_nodes` (2f + 1): a crashed node
///    stays in the membership until a replacement can be added, because
///    dropping below 2f + 1 silently forfeits the safety guarantee.
struct SystemLimits {
  int f = 0;          ///< max evictions per cycle; <= 0 disables the cap
  int min_nodes = 0;  ///< membership floor; <= 0 disables the floor
};

struct SystemDecision {
  std::vector<int> evict;  ///< node indices to evict (crashed)
  bool add_node = false;   ///< increase the replication factor
  int state = 0;           ///< the aggregated state s_t used for the decision
  int deferred_evictions = 0;  ///< crashed nodes kept to honour SystemLimits
  // Controller-health accounting (asynchronous level-2 controller only;
  // inline solves report mode == Inline with epoch/staleness zero).
  ControllerMode mode = ControllerMode::Inline;
  std::uint64_t policy_epoch = 0;  ///< epoch of the table behind this decision
  int staleness_cycles = 0;        ///< cycles since that table was published
};

class SystemController {
 public:
  /// `strategy` from Algorithm 2; pass std::nullopt for a static replication
  /// factor (the NO-RECOVERY / PERIODIC baselines).
  SystemController(std::optional<solvers::CmdpSolution> strategy, int max_nodes,
                   std::uint64_t seed, SystemLimits limits = {});

  /// One control step.  `beliefs[i]` is node i's reported belief;
  /// `reported[i]` is false when the node failed to report (=> crashed, it
  /// is evicted and N_t decremented, §V-B) — subject to the SystemLimits
  /// clamps; deferred evictions re-qualify next cycle.  Under an adaptive
  /// strategy, an eviction deferred by the membership floor (not merely the
  /// per-cycle f cap) forces add_node (if capacity remains) so the floor
  /// repair does not depend on the stochastic policy; static baselines
  /// never add.
  SystemDecision step(const std::vector<double>& beliefs,
                      const std::vector<bool>& reported);

  /// Route add-node decisions through an asynchronous controller instead of
  /// the inline strategy table.  Non-owning; the controller must outlive
  /// this object, and the caller drives its begin_cycle once per step.  In
  /// FRESH/HOLD the decision consumes the same Bernoulli draw as the inline
  /// path would (so a fault-free async run is decision-identical to inline);
  /// in FALLBACK it takes the deterministic threshold action.
  void attach_async(AsyncCmdpController* controller) { async_ = controller; }

  bool adaptive() const { return strategy_.has_value() || async_ != nullptr; }
  const SystemLimits& limits() const { return limits_; }

 private:
  std::optional<solvers::CmdpSolution> strategy_;
  AsyncCmdpController* async_ = nullptr;
  int max_nodes_;
  SystemLimits limits_;
  Rng rng_;
};

}  // namespace tolerance::core
