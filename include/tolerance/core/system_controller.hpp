// The global control level of TOLERANCE (§IV-V): receives the belief states
// from all node controllers, evicts nodes that stop reporting (crashed), and
// decides when to add a node using the CMDP strategy pi*(a|s) computed by
// Algorithm 2, where the state s_t = floor(sum_i (1 - b_{i,t})) is the
// expected number of healthy nodes (8).
//
// The controller itself runs on a crash-tolerant substrate; see
// tolerance/consensus/raft.hpp and the emulated_cluster example.
#pragma once

#include <optional>
#include <vector>

#include "tolerance/solvers/cmdp_lp.hpp"

namespace tolerance::core {

struct SystemDecision {
  std::vector<int> evict;  ///< node indices to evict (crashed)
  bool add_node = false;   ///< increase the replication factor
  int state = 0;           ///< the aggregated state s_t used for the decision
};

class SystemController {
 public:
  /// `strategy` from Algorithm 2; pass std::nullopt for a static replication
  /// factor (the NO-RECOVERY / PERIODIC baselines).
  SystemController(std::optional<solvers::CmdpSolution> strategy, int max_nodes,
                   std::uint64_t seed);

  /// One control step.  `beliefs[i]` is node i's reported belief;
  /// `reported[i]` is false when the node failed to report (=> crashed, it
  /// is evicted and N_t decremented, §V-B).
  SystemDecision step(const std::vector<double>& beliefs,
                      const std::vector<bool>& reported);

  bool adaptive() const { return strategy_.has_value(); }

 private:
  std::optional<solvers::CmdpSolution> strategy_;
  int max_nodes_;
  Rng rng_;
};

}  // namespace tolerance::core
