// The control strategies compared in §VIII-B:
//  * TOLERANCE          — belief-threshold recovery + CMDP replication.
//  * NO-RECOVERY        — never recovers, never adds (RAMPART, SECURE-RING).
//  * PERIODIC           — recovers every DeltaR steps, never adds (PBFT,
//                         VM-FIT, WORM-IT, PRRW, SCIT, BFT-SMART, ...).
//  * PERIODIC-ADAPTIVE  — periodic recovery + adds a node when the alert
//                         volume exceeds twice its mean (SITAR, ITUA, ITSI).
#pragma once

#include <string>

namespace tolerance::core {

enum class StrategyKind { Tolerance, NoRecovery, Periodic, PeriodicAdaptive };

std::string to_string(StrategyKind kind);

/// Staggered periodic-recovery schedule: node slot `i` is due for recovery
/// at time t when (t - i*stagger) mod DeltaR == 0, which spreads recoveries
/// so at most ~one node recovers per step (the k = 1 constraint of Prop. 1).
/// DeltaR <= 0 (infinity) means never due.
bool periodic_recovery_due(int node_slot, int t, int delta_r, int num_nodes);

}  // namespace tolerance::core
