// A/B double-buffered publication channel for level-2 policy tables.
//
// The asynchronous controller (core/async_controller.hpp) re-solves the
// replication CMDP in the background and must hand the resulting policy to
// the decision path without ever exposing a half-updated table: the decision
// path runs every control cycle and must not take a lock a slow solver could
// be holding.  PolicyBuffer keeps two table slots; a single writer fills the
// inactive slot, waits for stragglers to drain off it, and flips the active
// index with one release store (the "atomic epoch flip").  Readers are
// wait-free with respect to the writer: they pin a slot with a per-slot
// reader count, re-check the active index, and copy — the writer never
// mutates a slot a reader holds pinned, so every snapshot is internally
// consistent and epochs observed by any reader are monotone.
//
// Single-writer by contract (the async controller serializes publishes
// through one completion path); any number of concurrent readers.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace tolerance::core {

class PolicyBuffer {
 public:
  /// The decision-path view of one published CMDP solution: the pi(1|s)
  /// table plus the Thm. 2 threshold decomposition the FALLBACK rung of the
  /// staleness ladder degrades to.  Deliberately trimmed — no occupancy
  /// measure, no simplex basis — so snapshots are cheap to copy.
  struct Table {
    std::uint64_t epoch = 0;  ///< 0 = nothing published yet
    std::vector<double> add_probability;
    int beta1 = -1;
    int beta2 = -1;
    double kappa = 1.0;
    double average_cost = 0.0;
  };

  PolicyBuffer() = default;
  PolicyBuffer(const PolicyBuffer&) = delete;
  PolicyBuffer& operator=(const PolicyBuffer&) = delete;

  /// Publish a new table (single writer).  `table.epoch` must be strictly
  /// greater than the currently published epoch; the call spins briefly if
  /// a reader still pins the back slot (readers only hold a slot for the
  /// duration of one copy), then flips the active index atomically.
  void publish(Table table);

  /// Wait-free consistent copy of the currently published table.  Never
  /// observes a half-updated table and never blocks on the writer; epochs
  /// observed by one thread are monotone non-decreasing.
  Table snapshot() const;

  /// Currently published epoch (0 until the first publish) — the cheap
  /// staleness probe, one relaxed-ish atomic load.
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  mutable std::array<std::atomic<int>, 2> readers_{};
  std::atomic<int> active_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::array<Table, 2> slots_;
};

}  // namespace tolerance::core
