// Simultaneous Perturbation Stochastic Approximation (Spall).
//
// Hyperparameters follow Table 8: c = 10, gamma(eps) = 0.101,
// alpha(lambda) = 0.602, A = 100, a = 1, N = 50 iterations, delta = 0.2.
// Note: the paper observes SPSA failing to converge on Prob. 1 and
// attributes it to this hyperparameter choice (§VI-A); the defaults here
// deliberately reproduce that configuration, and the Options struct lets
// users pick saner gains.
#pragma once

#include "tolerance/solvers/optimizer.hpp"

namespace tolerance::solvers {

class Spsa final : public ParametricOptimizer {
 public:
  struct Options {
    double a = 1.0;       ///< numerator of the step-size gain
    double big_a = 100.0; ///< stability constant A
    double alpha = 0.602; ///< step-size decay exponent (Table 8 "lambda")
    double c = 10.0;      ///< perturbation magnitude
    double gamma = 0.101; ///< perturbation decay exponent (Table 8 "eps")
  };

  Spsa() : options_() {}
  explicit Spsa(Options options) : options_(options) {}

  std::string name() const override { return "spsa"; }
  OptResult optimize(const ObjectiveFn& f, int dim, long max_evaluations,
                     Rng& rng) const override;

 private:
  Options options_;
};

}  // namespace tolerance::solvers
