// Threshold-parameterized recovery strategies (Algorithm 1, line 6).
//
// Theorem 1 shows an optimal strategy recovers iff the belief exceeds a
// threshold, and Corollary 1 shows the thresholds depend only on the position
// within the periodic-recovery cycle (and are constant when DeltaR = inf).
// Algorithm 1 therefore parameterizes the strategy with d = DeltaR - 1
// thresholds theta_1..theta_d (a single theta when DeltaR = inf) and enforces
// the BTR constraint (6b) by recovering at every cycle boundary.
#pragma once

#include <vector>

#include "tolerance/pomdp/node_simulator.hpp"

namespace tolerance::solvers {

/// Sentinel for DeltaR = infinity (no periodic-recovery constraint).
inline constexpr int kNoBtr = 0;

class ThresholdPolicy {
 public:
  /// `delta_r` <= 0 means DeltaR = infinity.  `thresholds` must have
  /// dimension(delta_r) entries in [0, 1].
  ThresholdPolicy(std::vector<double> thresholds, int delta_r);

  /// Number of thresholds Algorithm 1 optimizes for a given DeltaR.
  static int dimension(int delta_r);

  /// Convenience: a single constant threshold (the DeltaR = inf case).
  static ThresholdPolicy constant(double threshold);

  /// The strategy pi_theta(b, t): recover iff b >= theta_k with k the
  /// position in the current cycle, or unconditionally at cycle boundaries
  /// (BTR constraint (6b)).
  pomdp::NodeAction action(double belief, int t) const;

  /// Adapter for the simulator.
  pomdp::NodePolicy as_policy() const;

  const std::vector<double>& thresholds() const { return thresholds_; }
  int delta_r() const { return delta_r_; }

 private:
  std::vector<double> thresholds_;
  int delta_r_;
};

}  // namespace tolerance::solvers
