// Threshold-parameterized recovery strategies (Algorithm 1, line 6).
//
// Theorem 1 shows an optimal strategy recovers iff the belief exceeds a
// threshold, and Corollary 1 shows the thresholds depend only on the position
// within the periodic-recovery cycle (and are constant when DeltaR = inf).
// Algorithm 1 therefore parameterizes the strategy with d = DeltaR - 1
// thresholds theta_1..theta_d (a single theta when DeltaR = inf) and enforces
// the BTR constraint (6b) by recovering at every cycle boundary.
#pragma once

#include <vector>

#include "tolerance/pomdp/node_simulator.hpp"

namespace tolerance::solvers {

/// Sentinel for DeltaR = infinity (no periodic-recovery constraint).
inline constexpr int kNoBtr = 0;

class ThresholdPolicy {
 public:
  /// `delta_r` <= 0 means DeltaR = infinity.  `thresholds` must have
  /// dimension(delta_r) entries in [0, 1].
  ThresholdPolicy(std::vector<double> thresholds, int delta_r);

  /// Number of thresholds Algorithm 1 optimizes for a given DeltaR.
  static int dimension(int delta_r);

  /// Convenience: a single constant threshold (the DeltaR = inf case).
  static ThresholdPolicy constant(double threshold);

  /// The strategy pi_theta(b, t): recover iff b >= theta_k with k the
  /// position in the current cycle, or unconditionally at cycle boundaries
  /// (BTR constraint (6b)).
  pomdp::NodeAction action(double belief, int t) const;

  /// Adapter for the simulator.
  pomdp::NodePolicy as_policy() const;

  const std::vector<double>& thresholds() const { return thresholds_; }
  int delta_r() const { return delta_r_; }

 private:
  std::vector<double> thresholds_;
  int delta_r_;
};

struct CmdpSolution;  // solvers/cmdp_lp.hpp

/// Level-2 analogue of Theorem 1's threshold structure: the deterministic
/// degraded-mode replication strategy the asynchronous controller falls back
/// to when the CMDP re-solver is crashed or hung past its deadline
/// (core/async_controller.hpp, FALLBACK rung).
///
/// Theorem 2 proves the optimal randomized policy is a mixture
/// kappa*pi_{beta1} + (1-kappa)*pi_{beta2} of two threshold strategies with
/// beta1 <= beta2 (add a node iff s <= beta).  A failsafe must be
/// deterministic and stateless, so we collapse the mixture onto its dominant
/// component: beta2 when kappa >= 1/2 puts the majority weight on the wider
/// threshold, beta1 otherwise.  This preserves the monotone add-iff-low-
/// healthy-count structure the theorem guarantees while dropping the
/// randomization that needs a live solver to justify.
class SystemThresholdPolicy {
 public:
  /// `beta` < 0 means "never add"; otherwise add a node iff s <= beta.
  explicit SystemThresholdPolicy(int beta) : beta_(beta) {}

  /// Dominant threshold component of a Thm. 2 mixture.  `fallback` is used
  /// when the solution carries no threshold decomposition (beta1 and beta2
  /// both unset).
  static int dominant_threshold(int beta1, int beta2, double kappa,
                                int fallback);

  /// Collapse a solved CMDP mixture onto its dominant component.
  static SystemThresholdPolicy from_solution(const CmdpSolution& solution,
                                             int fallback_beta);

  /// Deterministic action: add a node iff s <= beta.
  bool add(int s) const { return beta_ >= 0 && s <= beta_; }

  int beta() const { return beta_; }

 private:
  int beta_;
};

}  // namespace tolerance::solvers
