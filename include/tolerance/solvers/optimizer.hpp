// Common interface for the black-box optimizers plugged into Algorithm 1
// (PO in the paper's notation): CEM, Differential Evolution, SPSA and
// Bayesian Optimization.  All minimize a noisy objective over a box.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "tolerance/util/rng.hpp"

namespace tolerance::solvers {

using ObjectiveFn = std::function<double(const std::vector<double>&)>;

/// One (wall-clock seconds, best objective so far) sample; used to draw the
/// Fig. 7 convergence curves.
struct OptProgressPoint {
  double seconds = 0.0;
  double best_value = 0.0;
  long evaluations = 0;
};

struct OptResult {
  std::vector<double> best_x;
  double best_value = 0.0;
  long evaluations = 0;
  std::vector<OptProgressPoint> history;
};

class ParametricOptimizer {
 public:
  virtual ~ParametricOptimizer() = default;

  virtual std::string name() const = 0;

  /// Minimize `f` over [lo, hi]^dim with at most `max_evaluations` calls.
  virtual OptResult optimize(const ObjectiveFn& f, int dim,
                             long max_evaluations, Rng& rng) const = 0;
};

}  // namespace tolerance::solvers
