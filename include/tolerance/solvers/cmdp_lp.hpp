// Algorithm 2 of the paper: the optimal replication strategy via the
// occupancy-measure linear program (14) of the constrained MDP (Prob. 2).
//
//   minimize   sum_{s,a} s * rho(s,a)
//   subject to rho >= 0,  sum rho = 1,
//              sum_a rho(s,a) = sum_{s',a} rho(s',a) f_S(s | s', a)  for all s,
//              sum_{s,a} rho(s,a) [s >= f+1] >= epsilon_A.
//
// The optimal policy pi*(a|s) = rho*(s,a) / sum_a rho*(s,a); by Theorem 2 it
// is a randomized mixture of two threshold strategies, and the solution
// object reports the extracted thresholds (beta1, beta2) and mixing
// coefficient kappa.
#pragma once

#include <array>
#include <vector>

#include "tolerance/lp/simplex.hpp"
#include "tolerance/pomdp/system_model.hpp"
#include "tolerance/util/rng.hpp"

namespace tolerance::solvers {

struct CmdpSolution {
  lp::LpStatus status = lp::LpStatus::Infeasible;
  /// rho(s, a) occupancy measure.
  std::vector<std::array<double, 2>> occupancy;
  /// pi(a = 1 | s) — probability of adding a node in state s.  States never
  /// visited under the optimal occupancy are filled in by threshold
  /// extension (consistent with Thm. 2).
  std::vector<double> add_probability;
  double average_cost = 0.0;    ///< E[s] under the stationary distribution
  double availability = 0.0;    ///< P[s >= f+1] under the stationary distribution
  long lp_iterations = 0;
  /// Fill of the final eta-file reinversion (see LpSolution::eta_nnz).
  std::size_t lp_eta_nnz = 0;
  /// Optimal LP basis — feed back into solve_replication_lp to warm start
  /// the next solve (an epsilon_A sweep, a re-estimated kernel, the
  /// periodic re-solve of a control loop).
  lp::SimplexBasis basis;
  /// How the solver used the supplied (or self-crashed) starting basis.
  lp::WarmStart warm_start = lp::WarmStart::None;

  // Threshold-mixture decomposition (Thm. 2): pi = kappa*pi_{beta1} +
  // (1-kappa)*pi_{beta2} with beta1 <= beta2.
  int beta1 = -1;
  int beta2 = -1;
  double kappa = 1.0;
  int num_randomized_states = 0;  ///< states with 0 < pi(1|s) < 1

  /// Sample an action for state s.
  int act(int s, Rng& rng) const;

  /// Online policy queries for the system controller's control cycle: the
  /// live aggregated state s_t = floor(sum_i (1 - b_{i,t})) can fall outside
  /// the solved range when membership churns, so s is clamped into
  /// [0, smax] (consistent with the Thm. 2 threshold extension — the policy
  /// is monotone, so out-of-range states inherit the boundary action).
  double add_probability_at(int s) const;
  int act_clamped(int s, Rng& rng) const;

  /// Poison guard for the asynchronous publish path (core/policy_buffer.hpp):
  /// true iff the solve converged (Optimal), the policy table is non-empty,
  /// and every entry is a finite probability in [0, 1], with a finite
  /// average cost.  A background re-solve that comes back infeasible,
  /// unbounded or NaN-laden must be rejected by the controller, never
  /// flipped into the live table the decision path reads.
  bool valid_policy() const;
};

/// Solve Prob. 2 exactly (Algorithm 2).
///
/// `warm` (optional) seeds the simplex with a basis from a previous solve of
/// a same-shaped CMDP (same smax; epsilon_A / kernel may differ) — see
/// CmdpSolution::basis.  Without a caller basis the solver crashes its own
/// start from the always-add policy: the stationary support of a
/// deterministic policy is a known feasible vertex of the occupancy
/// polytope, so the solve usually skips simplex phase 1 outright.
CmdpSolution solve_replication_lp(
    const pomdp::SystemCmdp& cmdp,
    lp::SimplexSolver::Options lp_options = {},
    const lp::SimplexBasis* warm = nullptr);

}  // namespace tolerance::solvers
