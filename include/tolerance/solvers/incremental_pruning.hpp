// Incremental Pruning [Cassandra, Littman & Zhang 1997]: exact dynamic
// programming for the node POMDP (Prob. 1).
//
// The hidden belief state lives on [0, 1] (two non-crash states), so every
// value function is the lower envelope of lines ("alpha vectors", Fig. 4):
//   V(b) = min_g [ (1 - b) g_H + b g_C ].
// Backups cross-sum per-observation alpha sets and prune dominated lines
// after every cross-sum step, which is exactly the IP scheme.  Crashes are
// handled through the full 3-state kernel (2): a crashed node yields no
// future cost (it is evicted and replaced — its value is 0).
//
// Used as the "optimal" reference in Table 2 and to draw Figs. 4 and 15.
#pragma once

#include <vector>

#include "tolerance/pomdp/node_model.hpp"
#include "tolerance/pomdp/observation_model.hpp"

namespace tolerance::solvers {

struct AlphaVector {
  double v_healthy = 0.0;
  double v_compromised = 0.0;
  pomdp::NodeAction action = pomdp::NodeAction::Wait;

  double value(double belief) const {
    return (1.0 - belief) * v_healthy + belief * v_compromised;
  }
};

/// Lower envelope of a set of alpha vectors.
double envelope_value(const std::vector<AlphaVector>& alphas, double belief);

/// Minimizing action at a belief point.
pomdp::NodeAction envelope_action(const std::vector<AlphaVector>& alphas,
                                  double belief);

/// Remove lines that never attain the lower envelope on [0, 1].
std::vector<AlphaVector> prune(std::vector<AlphaVector> alphas,
                               double eps = 1e-12);

class IncrementalPruning {
 public:
  struct Result {
    /// value_functions[t] holds V_{t+1} (t = 0 is the first cycle step); for
    /// the discounted solve only index 0 is populated.
    std::vector<std::vector<AlphaVector>> value_functions;
    bool converged = true;
    int iterations = 0;
    /// Cycle-average (finite DeltaR) or (1-gamma)-scaled discounted cost at
    /// the initial belief b_1 = pA — comparable to J_i (5).
    double average_cost = 0.0;
  };

  /// Solve the DeltaR-cycle problem (16): horizon DeltaR with a forced
  /// recovery at the final step; exact, undiscounted.
  static Result solve_cycle(const pomdp::NodeModel& model,
                            const pomdp::ObservationModel& obs, int delta_r);

  /// Discounted infinite-horizon solve (the DeltaR = inf case), by value
  /// iteration with pruning until the max alpha change drops below tol.
  static Result solve_discounted(const pomdp::NodeModel& model,
                                 const pomdp::ObservationModel& obs,
                                 double discount = 0.99, double tol = 1e-6,
                                 int max_iterations = 10000);

  /// Smallest belief at which the envelope's action switches to Recover;
  /// returns 1.0 if it never does (Thm. 1 / Fig. 15).
  static double recovery_threshold(const std::vector<AlphaVector>& alphas,
                                   int grid = 4096);
};

}  // namespace tolerance::solvers
