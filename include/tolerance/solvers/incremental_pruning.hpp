// Incremental Pruning [Cassandra, Littman & Zhang 1997]: exact dynamic
// programming for the node POMDP (Prob. 1).
//
// The hidden belief state lives on [0, 1] (two non-crash states), so every
// value function is the lower envelope of lines ("alpha vectors", Fig. 4):
//   V(b) = min_g [ (1 - b) g_H + b g_C ].
// Backups cross-sum per-observation alpha sets and prune dominated lines
// after every cross-sum step, which is exactly the IP scheme.  Because the
// belief space is one-dimensional, the pruned cross-sum of two already
// pruned sets is computed directly by merging their hull breakpoints —
// min over independent choices distributes over the pointwise sum, so
// env(A (+) B) = env(A) + env(B) — instead of enumerating |A|*|B| sums and
// re-pruning (the backup hot path; see IpOptions::reference_backup for the
// pre-merge implementation kept for differential benchmarks).  Crashes are
// handled through the full 3-state kernel (2): a crashed node yields no
// future cost (it is evicted and replaced — its value is 0).
//
// Used as the "optimal" reference in Table 2 and to draw Figs. 4 and 15.
#pragma once

#include <vector>

#include "tolerance/pomdp/node_model.hpp"
#include "tolerance/pomdp/observation_model.hpp"

namespace tolerance::solvers {

struct AlphaVector {
  double v_healthy = 0.0;
  double v_compromised = 0.0;
  pomdp::NodeAction action = pomdp::NodeAction::Wait;

  double value(double belief) const {
    return (1.0 - belief) * v_healthy + belief * v_compromised;
  }
};

/// Lower envelope of a set of alpha vectors.
double envelope_value(const std::vector<AlphaVector>& alphas, double belief);

/// Minimizing action at a belief point.
pomdp::NodeAction envelope_action(const std::vector<AlphaVector>& alphas,
                                  double belief);

/// Remove lines that never attain the lower envelope on [0, 1].  Sets whose
/// exact envelope has more than `max_alpha` segments are capped by
/// bounded-error grid pruning (keep the argmin line at each of
/// 2 * max_alpha + 1 grid points), the standard refinement of practical
/// POMDP solvers.
std::vector<AlphaVector> prune(std::vector<AlphaVector> alphas,
                               double eps = 1e-12, int max_alpha = 64);

/// LP-domination pruning (Lark's algorithm): keep an alpha vector iff a
/// linear program run against all the others finds a belief where it is
/// strictly below their envelope.  Exact like the hull sweep in prune() —
/// this is the classic formulation, wired to the sparse revised simplex and
/// kept as a cross-check mode (IpOptions::lp_prune_crosscheck and the
/// solver test suite assert it agrees with the sweep).  O(n) LP solves; not
/// a hot path.  No bounded-error cap is applied.
std::vector<AlphaVector> prune_lp(std::vector<AlphaVector> alphas,
                                  double eps = 1e-9);

/// Tuning knobs of the IP solver; the defaults reproduce the paper runs.
struct IpOptions {
  /// Bounded-error cap on every pruned set (was a hard-coded constant).
  int max_alpha = 64;
  /// Worker threads for the per-action backups (<= 0: TOLERANCE_THREADS or
  /// hardware concurrency — see util::resolve_threads).  Results are
  /// bit-identical at any thread count: per-action sets are merged in
  /// action order.
  int threads = 1;
  /// Use the pre-merge cross-sum backup (enumerate + prune): the dense
  /// reference path for regression tests and the Fig. 8 speedup bench.
  bool reference_backup = false;
  /// Prune with prune_lp() instead of the hull sweep inside the backups
  /// (implies the reference enumeration path; slow — cross-check only).
  bool lp_prune_crosscheck = false;
};

class IncrementalPruning {
 public:
  struct Result {
    /// value_functions[t] holds V_{t+1} (t = 0 is the first cycle step); for
    /// the discounted solve only index 0 is populated.
    std::vector<std::vector<AlphaVector>> value_functions;
    bool converged = true;
    int iterations = 0;
    /// Cycle-average (finite DeltaR) or (1-gamma)-scaled discounted cost at
    /// the initial belief b_1 = pA — comparable to J_i (5).
    double average_cost = 0.0;
  };

  /// Solve the DeltaR-cycle problem (16): horizon DeltaR with a forced
  /// recovery at the final step; exact, undiscounted.
  static Result solve_cycle(const pomdp::NodeModel& model,
                            const pomdp::ObservationModel& obs, int delta_r,
                            const IpOptions& options);
  static Result solve_cycle(const pomdp::NodeModel& model,
                            const pomdp::ObservationModel& obs, int delta_r) {
    return solve_cycle(model, obs, delta_r, IpOptions{});
  }

  /// Discounted infinite-horizon solve (the DeltaR = inf case), by value
  /// iteration with pruning until the max alpha change drops below tol.
  static Result solve_discounted(const pomdp::NodeModel& model,
                                 const pomdp::ObservationModel& obs,
                                 double discount, double tol,
                                 int max_iterations, const IpOptions& options);
  static Result solve_discounted(const pomdp::NodeModel& model,
                                 const pomdp::ObservationModel& obs,
                                 double discount = 0.99, double tol = 1e-6,
                                 int max_iterations = 10000) {
    return solve_discounted(model, obs, discount, tol, max_iterations,
                            IpOptions{});
  }

  /// Smallest belief at which the envelope's action switches to Recover;
  /// returns 1.0 if it never does (Thm. 1 / Fig. 15).  Reads the switch off
  /// the envelope's own breakpoints (the hull sweep), replacing the old
  /// 4096-point scan + bisection.
  static double recovery_threshold(const std::vector<AlphaVector>& alphas);
};

}  // namespace tolerance::solvers
