// Minimal fully-connected neural network with Adam, written from scratch to
// support the PPO baseline of Table 2 (Table 8: 4 hidden layers of 64 ReLU
// units, lr 1e-5, clip 0.2, GAE lambda 0.95, entropy coefficient 1e-4).
#pragma once

#include <cstddef>
#include <vector>

#include "tolerance/util/rng.hpp"

namespace tolerance::solvers {

/// A multilayer perceptron with ReLU hidden activations and a linear output
/// layer.  Backpropagation accumulates gradients; AdamState applies updates.
class Mlp {
 public:
  /// `layer_sizes` = {inputs, hidden..., outputs}.
  Mlp(std::vector<int> layer_sizes, Rng& rng);

  int num_inputs() const { return layer_sizes_.front(); }
  int num_outputs() const { return layer_sizes_.back(); }
  std::size_t num_parameters() const;

  /// Forward pass; caches activations for a subsequent backward() call.
  std::vector<double> forward(const std::vector<double>& input);

  /// Inference-only forward pass: no activation caching, no mutation, safe
  /// to call concurrently from parallel episode workers (PpoSolver::policy
  /// relies on this when NodeSimulator::run_many shards episodes).
  std::vector<double> predict(const std::vector<double>& input) const;

  /// Backward pass for the most recent forward(); `grad_output` is
  /// dLoss/dOutput.  Accumulates into the parameter gradients.
  void backward(const std::vector<double>& grad_output);

  void zero_gradients();

  /// Adam update using the accumulated gradients (scaled by 1/batch).
  void adam_step(double lr, double batch_scale);

  /// Flat parameter access (for tests).
  std::vector<double>& weights(std::size_t layer) { return w_[layer]; }
  const std::vector<double>& gradients(std::size_t layer) const {
    return gw_[layer];
  }
  std::size_t num_layers() const { return w_.size(); }

 private:
  std::vector<int> layer_sizes_;
  // Per layer: weights (out x in, row-major) and biases (out).
  std::vector<std::vector<double>> w_, b_;
  std::vector<std::vector<double>> gw_, gb_;
  // Adam moments.
  std::vector<std::vector<double>> mw_, vw_, mb_, vb_;
  long adam_t_ = 0;
  // Cached activations: act_[0] = input, act_[L] = output (pre-ReLU for
  // hidden layers stored separately).
  std::vector<std::vector<double>> act_;
  std::vector<std::vector<double>> pre_;
};

/// Numerically stable softmax.
std::vector<double> softmax(const std::vector<double>& logits);

}  // namespace tolerance::solvers
