// Cross-Entropy Method (Table 8: population K = 100, elite fraction
// lambda = 0.15) — the optimizer the paper uses for the §VIII evaluation
// (Appendix E: "PO = CEM in Alg. 1").
#pragma once

#include "tolerance/solvers/optimizer.hpp"

namespace tolerance::solvers {

class CrossEntropyMethod final : public ParametricOptimizer {
 public:
  struct Options {
    int population = 100;       ///< K
    double elite_fraction = 0.15;  ///< lambda
    double init_mean = 0.5;
    double init_stddev = 0.3;
    double min_stddev = 1e-3;   ///< noise floor to avoid premature collapse
  };

  CrossEntropyMethod() : options_() {}
  explicit CrossEntropyMethod(Options options) : options_(options) {}

  std::string name() const override { return "cem"; }
  OptResult optimize(const ObjectiveFn& f, int dim, long max_evaluations,
                     Rng& rng) const override;

 private:
  Options options_;
};

}  // namespace tolerance::solvers
