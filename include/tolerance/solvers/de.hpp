// Differential Evolution (Storn & Price), DE/rand/1/bin.  Table 8:
// population K = 10, mutation step 0.2, recombination rate 0.7.
#pragma once

#include "tolerance/solvers/optimizer.hpp"

namespace tolerance::solvers {

class DifferentialEvolution final : public ParametricOptimizer {
 public:
  struct Options {
    int population = 10;        ///< K
    double mutate_step = 0.2;   ///< F (differential weight)
    double recombination = 0.7; ///< CR (crossover probability)
  };

  DifferentialEvolution() : options_() {}
  explicit DifferentialEvolution(Options options) : options_(options) {}

  std::string name() const override { return "de"; }
  OptResult optimize(const ObjectiveFn& f, int dim, long max_evaluations,
                     Rng& rng) const override;

 private:
  Options options_;
};

}  // namespace tolerance::solvers
