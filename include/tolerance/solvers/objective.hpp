// Monte-Carlo objective J_{i,theta} of Algorithm 1 (line 7): the average
// cost (5) of the threshold strategy pi_theta estimated from simulated
// trajectories of the node POMDP.
#pragma once

#include <vector>

#include "tolerance/pomdp/node_simulator.hpp"
#include "tolerance/solvers/threshold_policy.hpp"

namespace tolerance::solvers {

class RecoveryObjective {
 public:
  struct Options {
    int episodes = 50;     ///< M in Table 8
    int horizon = 200;     ///< steps per episode (cycles repeat inside)
    std::uint64_t seed = 1;
    /// Episode workers per evaluation (run_many sharding).  <= 0 resolves
    /// via util::resolve_threads; set 1 when the *caller* already runs
    /// evaluations in parallel (e.g. a bench sweeping thresholds).  The
    /// value never changes results — episodes are bit-identical for any
    /// thread count.
    int threads = 0;
  };

  RecoveryObjective(const pomdp::NodeModel& model,
                    const pomdp::ObservationModel& obs, int delta_r,
                    Options options);

  /// Dimension of theta for this DeltaR.
  int dimension() const { return ThresholdPolicy::dimension(delta_r_); }

  /// J(theta): average cost under pi_theta.  Uses common random numbers
  /// (a fixed seed) so optimizers see a consistent noisy landscape.
  double operator()(const std::vector<double>& theta) const;

  /// Full run statistics for a parameter vector (for reporting).
  pomdp::NodeRunStats evaluate(const std::vector<double>& theta) const;

  int delta_r() const { return delta_r_; }

 private:
  pomdp::NodeSimulator simulator_;
  int delta_r_;
  Options options_;
};

}  // namespace tolerance::solvers
