// Proximal Policy Optimization baseline for Prob. 1 (Table 2).
//
// Actor-critic over the belief MDP: input features are the belief and the
// normalized position within the periodic-recovery cycle; output is a
// Wait/Recover categorical.  Hyperparameters default to Table 8 (lr 1e-5,
// batch 4000 steps, 4x64 ReLU, clip 0.2, GAE lambda 0.95, entropy 1e-4).
// The learning rate of 1e-5 reproduces the paper's slow-but-steady PPO
// column; pass a larger lr for practical use.
#pragma once

#include <memory>

#include "tolerance/pomdp/node_simulator.hpp"
#include "tolerance/solvers/nn.hpp"
#include "tolerance/solvers/optimizer.hpp"

namespace tolerance::solvers {

class PpoSolver {
 public:
  struct Options {
    double learning_rate = 1e-5;
    int batch_steps = 4000;
    int hidden_layers = 4;
    int hidden_units = 64;
    double clip = 0.2;
    double gae_lambda = 0.95;
    double entropy_coef = 1e-4;
    double discount = 0.99;
    int epochs_per_batch = 4;
    int iterations = 50;       ///< number of collect+update cycles
    int episode_length = 200;  ///< steps per simulated episode
  };

  struct Result {
    double best_cost = 0.0;             ///< best evaluated average cost (5)
    std::vector<OptProgressPoint> history;
    long evaluations = 0;               ///< environment steps consumed
  };

  PpoSolver(const pomdp::NodeModel& model, const pomdp::ObservationModel& obs,
            int delta_r, Options options);

  /// Train and return progress (Fig. 7 curves / Table 2 row).
  Result train(Rng& rng);

  /// Greedy policy from the trained actor.
  pomdp::NodePolicy policy() const;

 private:
  std::vector<double> features(double belief, int t) const;

  pomdp::NodeModel model_;
  const pomdp::ObservationModel* obs_;
  int delta_r_;
  Options options_;
  std::shared_ptr<Mlp> actor_;
  std::shared_ptr<Mlp> critic_;
};

}  // namespace tolerance::solvers
