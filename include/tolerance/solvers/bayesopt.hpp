// Bayesian Optimization with a Gaussian-process surrogate.
//
// Table 8: Matern(2.5) kernel, lower-confidence-bound acquisition with
// beta = 2.5.  The GP uses a fixed length scale (no hyperparameter
// optimization) and a noise term sized for the Monte-Carlo objective;
// candidates are drawn at random and around the incumbent.
#pragma once

#include "tolerance/solvers/optimizer.hpp"

namespace tolerance::solvers {

class BayesianOptimization final : public ParametricOptimizer {
 public:
  struct Options {
    double beta = 2.5;          ///< LCB exploration weight
    double length_scale = 0.25; ///< Matern-5/2 length scale (per unit cube)
    double noise = 1e-2;        ///< observation noise variance
    int initial_random = 8;     ///< random evaluations before fitting the GP
    int candidates = 256;       ///< acquisition candidates per step
    int max_gp_points = 300;    ///< cap on GP training points (O(n^3) fits)
  };

  BayesianOptimization() : options_() {}
  explicit BayesianOptimization(Options options) : options_(options) {}

  std::string name() const override { return "bo"; }
  OptResult optimize(const ObjectiveFn& f, int dim, long max_evaluations,
                     Rng& rng) const override;

 private:
  Options options_;
};

}  // namespace tolerance::solvers
