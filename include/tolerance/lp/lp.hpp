// Linear-program representation.  Variables are non-negative; the objective
// is minimized.  This is exactly the form of the occupancy-measure LP (14)
// that Algorithm 2 of the paper solves (the paper uses CBC; we ship our own
// exact simplex, see simplex.hpp).
#pragma once

#include <utility>
#include <vector>

namespace tolerance::lp {

enum class Relation { LessEq, Eq, GreaterEq };

struct Constraint {
  /// Sparse row: (variable index, coefficient) pairs.
  std::vector<std::pair<int, double>> terms;
  Relation relation = Relation::Eq;
  double rhs = 0.0;
};

struct LinearProgram {
  explicit LinearProgram(int num_vars)
      : num_vars(num_vars), objective(num_vars, 0.0) {}

  int num_vars = 0;
  /// Minimized: sum_j objective[j] * x[j].
  std::vector<double> objective;
  std::vector<Constraint> constraints;

  void add_constraint(std::vector<std::pair<int, double>> terms, Relation rel,
                      double rhs) {
    constraints.push_back({std::move(terms), rel, rhs});
  }
};

}  // namespace tolerance::lp
