// Two-phase primal simplex over a dense tableau.
//
// Exact (up to floating point) LP solutions are all Algorithm 2 needs; the
// solver uses Dantzig pricing with an automatic switch to Bland's rule when
// degeneracy stalls progress, which guarantees termination.
#pragma once

#include <vector>

#include "tolerance/lp/lp.hpp"

namespace tolerance::lp {

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::IterationLimit;
  std::vector<double> x;      ///< primal values for the original variables
  double objective = 0.0;     ///< c^T x at the solution
  long iterations = 0;        ///< total pivots across both phases
};

class SimplexSolver {
 public:
  struct Options {
    long max_iterations = 200000;
    double eps = 1e-9;  ///< pivot / feasibility tolerance
  };

  SimplexSolver() : options_() {}
  explicit SimplexSolver(Options options) : options_(options) {}

  LpSolution solve(const LinearProgram& lp) const;

 private:
  Options options_;
};

}  // namespace tolerance::lp
