// Linear-program solvers for the occupancy-measure LP of Algorithm 2.
//
// Two interchangeable cores sit behind SimplexSolver:
//
//  * A sparse revised simplex (the default): constraint columns are stored
//    sparsely (CSC), the basis inverse is maintained as an eta-file
//    (product-form) factorization that is periodically recomputed by a
//    partial-pivoted Gauss-Jordan reinversion, and entering columns are
//    priced with a rotating partial-pricing window so an iteration never
//    touches the whole constraint matrix.  The solver accepts a caller
//    supplied starting basis (warm start): a basis that is still primal
//    feasible skips phase 1 entirely, and a basis that lost primal
//    feasibility to a right-hand-side change (an epsilon_A sweep, a
//    re-estimated kernel) but kept dual feasibility is repaired with a few
//    dual-simplex pivots instead of a from-scratch solve.
//
//  * The original dense two-phase tableau (Options::dense_fallback), kept
//    for differential testing and as a belt-and-braces fallback.
//
// Both cores are exact (up to floating point) and use Dantzig pricing with
// an automatic switch to Bland's rule when degeneracy stalls progress, which
// guarantees termination.
#pragma once

#include <vector>

#include "tolerance/lp/lp.hpp"

namespace tolerance::lp {

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

/// How a warm-start request was resolved (LpSolution::warm_start).
enum class WarmStart {
  None,         ///< cold solve (no basis supplied)
  PrimalReuse,  ///< supplied basis was primal feasible: phase 1 skipped
  DualRepair,   ///< basis repaired with dual-simplex pivots, then reused
  Rejected,     ///< basis unusable (singular / shape mismatch): cold solve
};

/// A basis snapshot in a shape-stable column indexing, so a basis taken from
/// one LP can seed the solve of another LP with the same shape (same
/// variable count, same constraint count/relations — e.g. the same CMDP at a
/// different epsilon_A or with a re-estimated kernel).
///
/// Column encoding: j in [0, num_vars) is the j-th structural variable;
/// num_vars + i is the auxiliary column of constraint i (slack for LessEq,
/// surplus for GreaterEq, artificial for Eq); num_vars + m + i is the
/// phase-1 artificial of GreaterEq constraint i.  Relations are the ones
/// after rhs-sign normalization, which both solver cores apply identically.
struct SimplexBasis {
  std::vector<int> basic;  ///< basic column per constraint row
  bool empty() const { return basic.empty(); }
};

struct LpSolution {
  LpStatus status = LpStatus::IterationLimit;
  std::vector<double> x;      ///< primal values for the original variables
  double objective = 0.0;     ///< c^T x at the solution
  long iterations = 0;        ///< total pivots across all phases
  /// Optimal basis (populated when status == Optimal); feed back into
  /// solve() to warm start a related LP.
  SimplexBasis basis;
  WarmStart warm_start = WarmStart::None;
  /// Nonzeros in the final eta-file reinversion (revised core only; 0 for
  /// the dense fallback) — the fill metric the Markowitz ordering targets.
  std::size_t eta_nnz = 0;
};

class SimplexSolver {
 public:
  struct Options {
    long max_iterations = 200000;
    double eps = 1e-9;  ///< pivot / feasibility tolerance
    /// Consecutive degenerate pivots before switching from Dantzig pricing
    /// to Bland's anti-cycling rule.
    long bland_stall_threshold = 2000;
    /// Route to the legacy dense two-phase tableau (for differential
    /// testing).  The dense core ignores warm-start bases but still exports
    /// the optimal basis in the shape-stable encoding.
    bool dense_fallback = false;
    /// Partial-pricing window: number of eligible columns scanned per
    /// iteration before the best candidate is taken (revised core only).
    int price_window = 192;
    /// Revised core: pivots between eta-file reinversions.
    int refactor_interval = 96;
    /// Max dual-simplex pivots spent repairing a warm basis before falling
    /// back to a cold solve.
    int dual_repair_limit = 400;
    /// Markowitz-style pivot ordering in the eta-file reinversion: columns
    /// are eliminated by ascending *remaining* nonzero count and the pivot
    /// row is the least-occupied numerically acceptable one, which keeps the
    /// factorization close to a permuted triangle and cuts eta fill (the
    /// cold large-smax lever).  false restores the static ascending-nnz
    /// order with pure partial pivoting.
    bool markowitz_reinversion = true;
    /// Threshold pivoting for the Markowitz order: rows within this factor
    /// of the largest transformed entry are acceptable pivots.
    double markowitz_threshold = 0.01;
  };

  SimplexSolver() : options_() {}
  explicit SimplexSolver(Options options) : options_(options) {}

  LpSolution solve(const LinearProgram& lp) const;
  /// Solve with a warm-start basis (see SimplexBasis).  An empty or
  /// unusable basis degrades gracefully to a cold solve.
  LpSolution solve(const LinearProgram& lp, const SimplexBasis& warm) const;

  const Options& options() const { return options_; }

 private:
  LpSolution solve_dense(const LinearProgram& lp) const;
  LpSolution solve_revised(const LinearProgram& lp,
                           const SimplexBasis* warm) const;

  Options options_;
};

}  // namespace tolerance::lp
