// Finite discrete-time Markov chain analysis (Appendix F of the paper):
// mean hitting times (MTTF), reliability curves R(t) = P[T_F > t], stationary
// distributions and trajectory simulation.
#pragma once

#include <vector>

#include "tolerance/la/matrix.hpp"
#include "tolerance/util/rng.hpp"

namespace tolerance::markov {

class MarkovChain {
 public:
  /// `transition` must be row-stochastic.
  explicit MarkovChain(la::Matrix transition);

  std::size_t num_states() const { return p_.rows(); }
  const la::Matrix& transition() const { return p_; }

  /// Mean hitting time of the target set from every state (Appendix F):
  /// h_i = 0 for i in target, else h_i = 1 + sum_j P_ij h_j, solved exactly
  /// by Gaussian elimination.  States that cannot reach the target get
  /// +infinity.
  std::vector<double> mean_hitting_times(const std::vector<bool>& target) const;

  /// Distribution after `t` steps starting from `init` (row vector * P^t).
  std::vector<double> distribution_after(std::vector<double> init, int t) const;

  /// Reliability curve: R(t) = P[T_failed > t | init] for t = 0..horizon,
  /// computed on the chain with `failed` made absorbing (eq. (18)).
  std::vector<double> reliability_curve(const std::vector<double>& init,
                                        const std::vector<bool>& failed,
                                        int horizon) const;

  /// Stationary distribution by power iteration (requires aperiodic unichain
  /// for convergence; callers assert via the returned residual if needed).
  std::vector<double> stationary_distribution(int max_iters = 100000,
                                              double tol = 1e-12) const;

  int step(int state, Rng& rng) const;

 private:
  la::Matrix p_;
};

/// Chain over the number of healthy nodes {0..n} when each healthy node
/// independently survives a time-step with probability `p_survive` and no
/// recoveries occur (the Fig. 5 / Fig. 6 setting).
MarkovChain binomial_survival_chain(int n, double p_survive);

}  // namespace tolerance::markov
