// Deterministic event-driven network simulator.
//
// Replaces the paper testbed's Ethernet + NETEM setup (§VII-A: Gbit/s links
// with 0.05% loss between replicas, 100 Mbit/s with 0.1% loss for clients).
// Provides per-link delay distributions, probabilistic loss and reordering,
// partitions, a simulated clock, cancellable timers, and a per-node
// CPU-busy model used to account for cryptographic work (Fig. 10's
// throughput is dominated by message count x crypto cost).
//
// This is the deterministic lane of the two-lane transport design (see
// net/transport.hpp): golden traces and model checking run here, while the
// wall-clock lane (net/async_runtime.hpp) runs the same protocol logic on
// real threads.
//
// Determinism: all randomness flows from the seed; events at equal times fire
// in schedule order.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "tolerance/net/profiles.hpp"
#include "tolerance/net/transport.hpp"
#include "tolerance/util/ensure.hpp"
#include "tolerance/util/rng.hpp"

namespace tolerance::net {

template <class Msg>
class SimNetwork final : public Transport<Msg> {
 public:
  using Handler = typename Transport<Msg>::Handler;

  explicit SimNetwork(std::uint64_t seed, LinkConfig default_link = LinkConfig{})
      : rng_(seed), default_link_(default_link) {}

  double now() const override { return now_; }

  void register_host(NodeId id, Handler handler) override {
    hosts_[id] = std::move(handler);
  }

  void unregister_host(NodeId id) override { hosts_.erase(id); }

  bool is_registered(NodeId id) const override { return hosts_.count(id) > 0; }

  /// Override the link configuration for a directed pair.
  void set_link(NodeId from, NodeId to, LinkConfig cfg) {
    links_[{from, to}] = cfg;
  }

  /// Block / unblock a bidirectional pair (network partition building block).
  void set_blocked(NodeId a, NodeId b, bool blocked) {
    if (blocked) {
      blocked_.insert(ordered(a, b));
    } else {
      blocked_.erase(ordered(a, b));
    }
  }

  /// Partition the nodes into groups: traffic crosses groups only if allowed.
  /// Replaces any previous partition wholesale — pairs blocked by an earlier
  /// grouping but involving nodes absent from this one are unblocked, so a
  /// shrinking repartition cannot leave stale islands behind.  Manual
  /// set_blocked pairs are independent and survive repartitioning.
  void partition(const std::vector<std::vector<NodeId>>& groups) {
    partition_blocked_.clear();
    std::unordered_map<NodeId, int> group_of;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (NodeId n : groups[g]) group_of[n] = static_cast<int>(g);
    }
    std::vector<NodeId> all;
    for (const auto& [id, g] : group_of) {
      (void)g;
      all.push_back(id);
    }
    for (std::size_t i = 0; i < all.size(); ++i) {
      for (std::size_t j = i + 1; j < all.size(); ++j) {
        if (group_of[all[i]] != group_of[all[j]]) {
          partition_blocked_.insert(ordered(all[i], all[j]));
        }
      }
    }
  }

  void heal_partition() { partition_blocked_.clear(); }

  /// Account CPU time on a node (e.g. a signature); subsequent deliveries to
  /// and sends from this node are serialized after the busy period.
  void consume_cpu(NodeId node, double seconds) override {
    TOL_ENSURE(seconds >= 0.0, "CPU time must be non-negative");
    double& busy = busy_until_[node];
    busy = std::max(busy, now_) + seconds;
  }

  double busy_until(NodeId node) const {
    const auto it = busy_until_.find(node);
    return it == busy_until_.end() ? 0.0 : it->second;
  }

  /// Messages parked in `node`'s arrival-order FIFO behind its busy window —
  /// the sim lane's queue* input to admission control.
  std::size_t queue_depth(NodeId node) const override {
    const auto it = inbound_.find(node);
    return it == inbound_.end() ? 0 : it->second.size();
  }

  /// Send a message; may be dropped (loss) or blocked (partition).
  void send(NodeId from, NodeId to, Msg msg) override {
    if (blocked(from, to)) return;
    const LinkConfig cfg = link(from, to);
    if (rng_.bernoulli(cfg.loss)) {
      ++dropped_;
      return;
    }
    const double depart = std::max(now_, busy_until(from));
    double delay = cfg.base_delay +
                   (cfg.jitter > 0.0 ? rng_.uniform(0.0, cfg.jitter) : 0.0);
    // NETEM-style reordering: a held-back message is overtaken by anything
    // sent within the extra-delay window.  The draw only happens when the
    // knob is on, so profiles without reordering keep their exact
    // delivery-time sequences.
    if (cfg.reorder > 0.0 && rng_.bernoulli(cfg.reorder)) {
      delay += cfg.reorder_delay;
      ++reordered_;
    }
    const double arrival = depart + delay;
    push_event(arrival, [this, from, to, m = std::move(msg)]() mutable {
      inbound_[to].emplace_back(from, std::move(m));
      drain_or_defer(to);
    });
  }

  void broadcast(NodeId from, const std::vector<NodeId>& recipients,
                 const Msg& msg) override {
    for (NodeId to : recipients) {
      if (to != from) send(from, to, msg);
    }
  }

  /// Schedule a callback after `delay` seconds; returns a cancellable id.
  std::uint64_t schedule(double delay, std::function<void()> fn) {
    TOL_ENSURE(delay >= 0.0, "delay must be non-negative");
    const std::uint64_t id = next_timer_id_++;
    live_timers_.insert(id);
    push_event(now_ + delay, [this, id, f = std::move(fn)]() {
      live_timers_.erase(id);
      if (cancelled_.erase(id) > 0) return;
      f();
    });
    return id;
  }

  /// Transport overload: simulated time has one global event queue, so the
  /// owning node is irrelevant here (the async backend routes the callback
  /// onto the owner's event loop).
  std::uint64_t schedule(NodeId owner, double delay,
                         std::function<void()> fn) override {
    (void)owner;
    return schedule(delay, std::move(fn));
  }

  /// A no-op for already-fired or never-issued ids: only live timers are
  /// marked, so repeated cancels of dead ids cannot grow the cancelled set
  /// (and cannot poison a future timer that happens to reuse the id space).
  void cancel(std::uint64_t timer_id) override {
    if (live_timers_.count(timer_id) > 0) cancelled_.insert(timer_id);
  }

  /// Process a single event; returns false when the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    Event ev = queue_.top();
    queue_.pop();
    now_ = std::max(now_, ev.time);
    ev.fn();
    ++processed_;
    return true;
  }

  /// Run until the queue drains or the clock passes `until` (whichever first).
  void run_until(double until) {
    while (!queue_.empty() && queue_.top().time <= until) step();
    now_ = std::max(now_, until);
  }

  /// Run until the queue drains or `max_events` were processed.
  void run(std::size_t max_events = SIZE_MAX) {
    std::size_t n = 0;
    while (n < max_events && step()) ++n;
  }

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t dropped_messages() const { return dropped_; }
  std::uint64_t reordered_messages() const { return reordered_; }
  std::uint64_t processed_events() const { return processed_; }
  /// Timers scheduled but neither fired nor cancelled yet.
  std::size_t live_timer_count() const { return live_timers_.size(); }
  /// Cancelled-but-not-yet-fired timers (bounded by live timers at cancel
  /// time; cancelling dead ids leaves this untouched).
  std::size_t cancelled_pending() const { return cancelled_.size(); }

  Rng& rng() { return rng_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  static std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  bool blocked(NodeId from, NodeId to) const {
    const auto key = ordered(from, to);
    return blocked_.count(key) > 0 || partition_blocked_.count(key) > 0;
  }

  LinkConfig link(NodeId from, NodeId to) const {
    const auto it = links_.find({from, to});
    return it == links_.end() ? default_link_ : it->second;
  }

  /// Drain the receiver's inbound FIFO, serializing behind its CPU-busy
  /// window.  The window is re-checked before every delivery: a handler may
  /// consume CPU, pushing the window out for the messages still queued
  /// behind it — delivering those mid-busy would undercount exactly the
  /// crypto serialization this model exists to capture.  Deferral moves the
  /// WHOLE queue, never an individual message: re-deferring per message
  /// could leapfrog a later arrival past an earlier deferred one, and a
  /// same-sender inversion is fatal to protocols that enforce FIFO by
  /// counter freshness (MinBFT discards the leapfrogged counter forever).
  void drain_or_defer(NodeId to) {
    const auto qit = inbound_.find(to);
    if (qit == inbound_.end()) return;
    auto& queue = qit->second;
    while (!queue.empty()) {
      const double ready = busy_until(to);
      if (ready > now_) {
        // One pending drain per node is enough; duplicates would only burn
        // event budget re-finding an empty or still-busy queue.
        const auto dit = drain_at_.find(to);
        if (dit == drain_at_.end() || dit->second > ready) {
          drain_at_[to] = ready;
          push_event(ready, [this, to]() {
            drain_at_.erase(to);
            drain_or_defer(to);
          });
        }
        return;
      }
      auto [from, m] = std::move(queue.front());
      queue.pop_front();
      const auto it = hosts_.find(to);
      if (it == hosts_.end()) continue;  // host evicted/crashed: drop
      it->second(from, m);
    }
    inbound_.erase(qit);
  }

  void push_event(double time, std::function<void()> fn) {
    queue_.push(Event{time, next_seq_++, std::move(fn)});
  }

  Rng rng_;
  LinkConfig default_link_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_timer_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_map<NodeId, Handler> hosts_;
  std::map<std::pair<NodeId, NodeId>, LinkConfig> links_;
  std::set<std::pair<NodeId, NodeId>> blocked_;
  std::set<std::pair<NodeId, NodeId>> partition_blocked_;
  std::unordered_map<NodeId, double> busy_until_;
  /// Per-receiver arrival-order FIFO (drained behind the busy window).
  std::unordered_map<NodeId, std::deque<std::pair<NodeId, Msg>>> inbound_;
  std::unordered_map<NodeId, double> drain_at_;  ///< pending drain wakeups
  std::unordered_set<std::uint64_t> live_timers_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace tolerance::net
