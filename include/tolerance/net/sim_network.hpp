// Deterministic event-driven network simulator.
//
// Replaces the paper testbed's Ethernet + NETEM setup (§VII-A: Gbit/s links
// with 0.05% loss between replicas, 100 Mbit/s with 0.1% loss for clients).
// Provides per-link delay distributions, probabilistic loss, partitions, a
// simulated clock, cancellable timers, and a per-node CPU-busy model used to
// account for cryptographic work (Fig. 10's throughput is dominated by
// message count x crypto cost).
//
// Determinism: all randomness flows from the seed; events at equal times fire
// in schedule order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tolerance/util/ensure.hpp"
#include "tolerance/util/rng.hpp"

namespace tolerance::net {

using NodeId = std::uint32_t;

struct LinkConfig {
  double base_delay = 1e-3;  ///< seconds
  double jitter = 2e-4;      ///< uniform extra delay in [0, jitter)
  double loss = 5e-4;        ///< drop probability (NETEM-style)
};

template <class Msg>
class SimNetwork {
 public:
  using Handler = std::function<void(NodeId from, const Msg&)>;

  explicit SimNetwork(std::uint64_t seed, LinkConfig default_link = LinkConfig{})
      : rng_(seed), default_link_(default_link) {}

  double now() const { return now_; }

  void register_host(NodeId id, Handler handler) {
    hosts_[id] = std::move(handler);
  }

  void unregister_host(NodeId id) { hosts_.erase(id); }

  bool is_registered(NodeId id) const { return hosts_.count(id) > 0; }

  /// Override the link configuration for a directed pair.
  void set_link(NodeId from, NodeId to, LinkConfig cfg) {
    links_[{from, to}] = cfg;
  }

  /// Block / unblock a bidirectional pair (network partition building block).
  void set_blocked(NodeId a, NodeId b, bool blocked) {
    if (blocked) {
      blocked_.insert(ordered(a, b));
    } else {
      blocked_.erase(ordered(a, b));
    }
  }

  /// Partition the nodes into groups: traffic crosses groups only if allowed.
  void partition(const std::vector<std::vector<NodeId>>& groups) {
    std::unordered_map<NodeId, int> group_of;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (NodeId n : groups[g]) group_of[n] = static_cast<int>(g);
    }
    std::vector<NodeId> all;
    for (const auto& [id, g] : group_of) {
      (void)g;
      all.push_back(id);
    }
    for (std::size_t i = 0; i < all.size(); ++i) {
      for (std::size_t j = i + 1; j < all.size(); ++j) {
        set_blocked(all[i], all[j], group_of[all[i]] != group_of[all[j]]);
      }
    }
  }

  void heal_partition() { blocked_.clear(); }

  /// Account CPU time on a node (e.g. a signature); subsequent deliveries to
  /// and sends from this node are serialized after the busy period.
  void consume_cpu(NodeId node, double seconds) {
    TOL_ENSURE(seconds >= 0.0, "CPU time must be non-negative");
    double& busy = busy_until_[node];
    busy = std::max(busy, now_) + seconds;
  }

  double busy_until(NodeId node) const {
    const auto it = busy_until_.find(node);
    return it == busy_until_.end() ? 0.0 : it->second;
  }

  /// Send a message; may be dropped (loss) or blocked (partition).
  void send(NodeId from, NodeId to, Msg msg) {
    if (blocked_.count(ordered(from, to)) > 0) return;
    const LinkConfig cfg = link(from, to);
    if (rng_.bernoulli(cfg.loss)) {
      ++dropped_;
      return;
    }
    const double depart = std::max(now_, busy_until(from));
    const double delay = cfg.base_delay +
                         (cfg.jitter > 0.0 ? rng_.uniform(0.0, cfg.jitter) : 0.0);
    const double arrival = depart + delay;
    push_event(arrival, [this, from, to, m = std::move(msg)]() {
      const auto it = hosts_.find(to);
      if (it == hosts_.end()) return;  // host evicted/crashed
      // Serialize after the receiver's CPU-busy period.
      const double ready = busy_until(to);
      if (ready > now_) {
        const Msg copy = m;
        push_event(ready, [this, from, to, copy]() {
          const auto it2 = hosts_.find(to);
          if (it2 != hosts_.end()) it2->second(from, copy);
        });
        return;
      }
      it->second(from, m);
    });
  }

  void broadcast(NodeId from, const std::vector<NodeId>& recipients,
                 const Msg& msg) {
    for (NodeId to : recipients) {
      if (to != from) send(from, to, msg);
    }
  }

  /// Schedule a callback after `delay` seconds; returns a cancellable id.
  std::uint64_t schedule(double delay, std::function<void()> fn) {
    TOL_ENSURE(delay >= 0.0, "delay must be non-negative");
    const std::uint64_t id = next_timer_id_++;
    push_event(now_ + delay, [this, id, f = std::move(fn)]() {
      if (cancelled_.erase(id) > 0) return;
      f();
    });
    return id;
  }

  void cancel(std::uint64_t timer_id) { cancelled_.insert(timer_id); }

  /// Process a single event; returns false when the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    Event ev = queue_.top();
    queue_.pop();
    now_ = std::max(now_, ev.time);
    ev.fn();
    ++processed_;
    return true;
  }

  /// Run until the queue drains or the clock passes `until` (whichever first).
  void run_until(double until) {
    while (!queue_.empty() && queue_.top().time <= until) step();
    now_ = std::max(now_, until);
  }

  /// Run until the queue drains or `max_events` were processed.
  void run(std::size_t max_events = SIZE_MAX) {
    std::size_t n = 0;
    while (n < max_events && step()) ++n;
  }

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t dropped_messages() const { return dropped_; }
  std::uint64_t processed_events() const { return processed_; }

  Rng& rng() { return rng_; }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  static std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  LinkConfig link(NodeId from, NodeId to) const {
    const auto it = links_.find({from, to});
    return it == links_.end() ? default_link_ : it->second;
  }

  void push_event(double time, std::function<void()> fn) {
    queue_.push(Event{time, next_seq_++, std::move(fn)});
  }

  Rng rng_;
  LinkConfig default_link_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_timer_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_map<NodeId, Handler> hosts_;
  std::map<std::pair<NodeId, NodeId>, LinkConfig> links_;
  std::set<std::pair<NodeId, NodeId>> blocked_;
  std::unordered_map<NodeId, double> busy_until_;
  std::set<std::uint64_t> cancelled_;
};

}  // namespace tolerance::net
