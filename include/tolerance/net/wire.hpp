// Compact binary wire format.
//
// The async runtime ships bytes between per-node event loops, not shared
// C++ objects: every message is serialized once at the sender and decoded
// into a private copy at each receiver, which is both what a real network
// stack does and what makes the runtime lane free of cross-thread object
// sharing (digest memos and signature caches stay loop-local).
//
// Encoding: unsigned LEB128 varints for integers, length-prefixed byte
// strings, raw 32-byte digests, one tag byte per message alternative.
// Decoding is bounds-checked and total: any malformed or truncated buffer
// yields nullopt, never undefined behaviour — a prerequisite for feeding
// the codec from a lossy transport.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "tolerance/consensus/minbft_messages.hpp"

namespace tolerance::net::wire {

using Bytes = std::vector<std::uint8_t>;

/// Append-only byte-buffer writer (unsigned LEB128 varints).
class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void bytes(const std::uint8_t* data, std::size_t len) {
    out_.insert(out_.end(), data, data + len);
  }
  void str(std::string_view s) {
    varint(s.size());
    bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }
  void digest(const crypto::Digest& d) { bytes(d.data(), d.size()); }

  Bytes take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  Bytes out_;
};

/// Bounds-checked reader over a byte span.  Every accessor returns nullopt
/// past the end (or on varint overflow) instead of reading out of bounds.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}
  explicit Reader(const Bytes& b) : Reader(b.data(), b.size()) {}

  std::size_t remaining() const { return len_ - pos_; }
  bool done() const { return pos_ == len_; }

  std::optional<std::uint8_t> u8() {
    if (pos_ >= len_) return std::nullopt;
    return data_[pos_++];
  }
  std::optional<std::uint64_t> varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const auto byte = u8();
      if (!byte) return std::nullopt;
      v |= static_cast<std::uint64_t>(*byte & 0x7f) << shift;
      if ((*byte & 0x80) == 0) return v;
    }
    return std::nullopt;  // > 10 continuation bytes: malformed
  }
  std::optional<std::string> str() {
    const auto len = varint();
    if (!len || *len > remaining()) return std::nullopt;
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(*len));
    pos_ += static_cast<std::size_t>(*len);
    return s;
  }
  std::optional<crypto::Digest> digest() {
    crypto::Digest d{};
    if (remaining() < d.size()) return std::nullopt;
    for (std::size_t i = 0; i < d.size(); ++i) d[i] = data_[pos_ + i];
    pos_ += d.size();
    return d;
  }

 private:
  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

}  // namespace tolerance::net::wire

namespace tolerance::net {

/// Codec for the MinBFT message vocabulary, used by the async runtime lane
/// (AsyncRuntime<consensus::MinBftMsg, MinBftCodec>).
struct MinBftCodec {
  static wire::Bytes encode(const consensus::MinBftMsg& msg);
  /// nullopt on any malformed, truncated, or trailing-garbage buffer.
  static std::optional<consensus::MinBftMsg> decode(const std::uint8_t* data,
                                                    std::size_t len);
  static std::optional<consensus::MinBftMsg> decode(const wire::Bytes& b) {
    return decode(b.data(), b.size());
  }
};

}  // namespace tolerance::net
