// Link shaping and the named network-profile catalog.
//
// LinkConfig is the per-directed-pair NETEM-style shaping knob set used by
// both transport backends (deterministic SimNetwork and wall-clock
// AsyncRuntime).  NetworkProfile bundles a replica-side and a client-side
// LinkConfig plus optional partition-flapping under a name, mirroring the
// paper's testbed (§VII-A: Gbit/s replica links, 100 Mbit/s client links)
// and the lossy multi-hop regime of Mager et al. (arXiv 1804.08986).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tolerance::net {

struct LinkConfig {
  double base_delay = 1e-3;  ///< seconds
  double jitter = 2e-4;      ///< uniform extra delay in [0, jitter)
  double loss = 5e-4;        ///< drop probability (NETEM-style)
  /// Probability that a message is held back by an extra `reorder_delay`
  /// seconds (NETEM reorder: late-released packets overtake none, but
  /// everything sent within the window overtakes them).  0 draws no
  /// randomness, so pre-existing configurations keep their exact
  /// delivery-time sequences.
  double reorder = 0.0;
  double reorder_delay = 0.0;  ///< extra delay for reordered messages
};

/// A named pair of link configurations plus partition-flap cadence.  The
/// catalog entries are calibrated against public measurements, not tuned to
/// make any benchmark look good:
///  * LAN           — the paper's testbed: switched Ethernet, sub-ms RTT.
///  * WAN           — inter-region links: tens of ms, jitter, light loss
///                    and occasional reordering.
///  * LOSSY_MULTIHOP — low-power wireless mesh à la Mager et al.: tens of
///                    ms per traversal, heavy jitter, percent-level loss,
///                    frequent reordering.
///  * PARTITION_FLAP — LAN links, but the network repeatedly splits a
///                    minority off for `flap_duration` every `flap_interval`
///                    (drives the view-change and retransmission machinery).
struct NetworkProfile {
  std::string name;
  LinkConfig replica_link;  ///< replica <-> replica
  LinkConfig client_link;   ///< client <-> replica
  /// Partition flapping: every `flap_interval` seconds, isolate a rotating
  /// minority group for `flap_duration` seconds.  0 disables flapping.
  double flap_interval = 0.0;
  double flap_duration = 0.0;

  static NetworkProfile lan();
  static NetworkProfile wan();
  static NetworkProfile lossy_multihop();
  static NetworkProfile partition_flap();

  /// Every named profile, in a stable order (benches sweep this).
  static const std::vector<NetworkProfile>& catalog();
  /// Lookup by name (case-sensitive); nullopt for unknown names.
  static std::optional<NetworkProfile> by_name(std::string_view name);
};

}  // namespace tolerance::net
