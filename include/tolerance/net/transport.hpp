// The message-passing surface the consensus layer programs against.
//
// Two backends implement it:
//  * net::SimNetwork — deterministic simulated time (golden traces, model
//    checking, the Fig. 10 simulated-cost lane);
//  * net::AsyncRuntime — real threads and wall-clock timers (the runtime
//    lane, where real crypto overlaps real I/O).
//
// The same MinBftReplica / MinBftClient logic runs on either: everything
// they need from a network is here.  Sim-only facilities (stepping the
// event loop, seeding, link surgery mid-run) stay on the concrete classes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace tolerance::net {

using NodeId = std::uint32_t;

template <class Msg>
class Transport {
 public:
  using Handler = std::function<void(NodeId from, const Msg&)>;

  virtual ~Transport() = default;

  /// Current time in seconds: simulated on the sim lane, monotonic
  /// wall-clock since runtime start on the async lane.
  virtual double now() const = 0;

  virtual void register_host(NodeId id, Handler handler) = 0;
  virtual void unregister_host(NodeId id) = 0;
  virtual bool is_registered(NodeId id) const = 0;

  /// Send a message; may be dropped (loss) or blocked (partition).
  virtual void send(NodeId from, NodeId to, Msg msg) = 0;

  /// Fan a message out to every recipient except the sender itself.  The
  /// async backend serializes the message once for the whole fan-out.
  virtual void broadcast(NodeId from, const std::vector<NodeId>& recipients,
                         const Msg& msg) = 0;

  /// Schedule `fn` to run after `delay` seconds in `owner`'s execution
  /// context (on the async lane each node is a serial event loop; the timer
  /// callback runs on it, never concurrently with the node's handler).
  /// Returns a cancellable id.
  virtual std::uint64_t schedule(NodeId owner, double delay,
                                 std::function<void()> fn) = 0;

  /// Cancel a scheduled timer.  A no-op for already-fired (or never-issued)
  /// ids; on the async lane a callback that is already being dispatched may
  /// still run.
  virtual void cancel(std::uint64_t timer_id) = 0;

  /// Account CPU time on a node (e.g. a signature).  The sim backend
  /// serializes subsequent deliveries/sends behind the busy window; the
  /// async backend's nodes burn real CPU instead and treat the modelled
  /// cost as documentation (unless configured to honor it).
  virtual void consume_cpu(NodeId node, double seconds) = 0;

  /// Undelivered inbound messages currently queued for `node` — the
  /// transport's contribution to the admission controller's queue* signal.
  /// SimNetwork reports its per-receiver FIFO; AsyncRuntime reports the
  /// node's bounded inbox.  0 for unknown nodes.
  virtual std::size_t queue_depth(NodeId node) const {
    (void)node;
    return 0;
  }
};

}  // namespace tolerance::net
