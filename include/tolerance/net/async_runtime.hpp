// Real-time event-driven transport: the wall-clock lane.
//
// Where net::SimNetwork advances a simulated clock over one global event
// queue, AsyncRuntime runs every registered node as a serial event loop
// multiplexed onto a util::ThreadPool: messages are serialized through a
// wire codec at the sender, shaped by the same LinkConfig knobs (delay,
// jitter, loss, reorder, partitions) the simulator honors, and decoded into
// a private copy on the receiver's loop — so real crypto (HMAC-SHA256
// signatures, USIG certificates) overlaps real I/O across cores, and no
// C++ object is ever shared between two node loops.
//
// Structure per node:
//  * a bounded inbound frame queue — overflow drops the OLDEST frame
//    (clients retransmit; dropping new frames would starve retransmissions
//    behind stale backlog) and is accounted per node and globally;
//  * an unbounded local job queue for timer callbacks and posted closures
//    (protocol timers must not be lost to backpressure);
//  * a `draining` flag ensuring at most one pool task dispatches the node
//    at a time — the loop is serial, handlers never race with their own
//    timers.
//
// Timers are monotonic wall-clock (std::chrono::steady_clock), fired by a
// dedicated timer thread that also releases delay-shaped frames.  Timer ids
// share SimNetwork's cancellation semantics: cancel is a no-op for dead
// ids, live-id tracking keeps the cancelled set bounded.
//
// Authenticator batching (the wall-clock fast path): every frame travels
// inside a bundle authenticated by one HMAC-SHA256 tag under a per-directed-
// pair link key (modelling pre-shared session keys).  With flush_window = 0
// each message is its own bundle — the classic one-MAC-per-message cost.
// With flush_window > 0 outbound frames per destination coalesce behind a
// short flush timer, so one authenticator (and one shaping/queueing pass)
// covers the whole flush; the receiver verifies the single tag, then
// decodes and dispatches each frame in order.  A bundle that fails
// authentication is dropped whole and counted (auth_failures).
//
// Shutdown: stop() fences off new sends and timers, joins the timer
// thread, then waits for every in-flight node loop to go idle.  The
// destructor calls stop(), so a scoped runtime never leaks tasks into the
// pool it borrowed.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "tolerance/crypto/hmac.hpp"
#include "tolerance/net/fault_injector.hpp"
#include "tolerance/net/profiles.hpp"
#include "tolerance/net/transport.hpp"
#include "tolerance/util/ensure.hpp"
#include "tolerance/util/rng.hpp"
#include "tolerance/util/thread_pool.hpp"

namespace tolerance::net {

/// `Codec` must provide
///   static std::vector<std::uint8_t> encode(const Msg&);
///   static std::optional<Msg> decode(const std::uint8_t*, std::size_t);
/// (net::MinBftCodec is the in-tree instance, wire.hpp).
template <class Msg, class Codec>
class AsyncRuntime final : public Transport<Msg> {
 public:
  using Handler = typename Transport<Msg>::Handler;
  using Bytes = std::vector<std::uint8_t>;

  struct Options {
    LinkConfig replica_link{};  ///< links among ids below client_floor
    LinkConfig client_link{};   ///< links touching ids >= client_floor
    NodeId client_floor = 10000;
    /// Inbound frame queue capacity per node (drop-oldest beyond).
    std::size_t inbound_capacity = 4096;
    /// Honor consume_cpu by burning real CPU on the calling loop.  Off by
    /// default: the wall-clock lane measures the real crypto the node
    /// actually performs, not the sim lane's modelled costs.
    bool honor_cpu_costs = false;
    /// Outbound authenticator-batching window in seconds.  0 ships every
    /// message as its own authenticated bundle (one HMAC per message);
    /// > 0 coalesces frames per destination for up to this long so one
    /// HMAC-SHA256 tag covers the whole flush.
    double flush_window = 0.0;
    /// Size trigger for the coalescing window: a buffered bundle that
    /// reaches this many frames ships immediately instead of waiting out
    /// the window, so a high-rate pair pays amortized MACs without the
    /// full window's latency tax.
    std::size_t flush_max_frames = 16;
    std::uint64_t seed = 1;  ///< loss/jitter/reorder draws + link keys
  };

  AsyncRuntime(util::ThreadPool& pool, Options options)
      : pool_(&pool), options_(validated(std::move(options))),
        rng_(options_.seed), start_(std::chrono::steady_clock::now()),
        timer_thread_([this]() { timer_loop(); }) {}

  ~AsyncRuntime() override { stop(); }

  AsyncRuntime(const AsyncRuntime&) = delete;
  AsyncRuntime& operator=(const AsyncRuntime&) = delete;

  // --- Transport -----------------------------------------------------------

  double now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void register_host(NodeId id, Handler handler) override {
    auto host = std::make_shared<Host>();
    host->id = id;
    host->handler = std::move(handler);
    std::lock_guard<std::mutex> lk(hosts_mu_);
    hosts_[id] = std::move(host);
  }

  void unregister_host(NodeId id) override {
    std::shared_ptr<Host> host;
    {
      std::lock_guard<std::mutex> lk(hosts_mu_);
      const auto it = hosts_.find(id);
      if (it == hosts_.end()) return;
      host = it->second;
      hosts_.erase(it);
    }
    // Clear the handler under the host lock so an in-flight drain observes
    // the removal and stops dispatching (frames already queued are dropped).
    std::lock_guard<std::mutex> lk(host->mu);
    host->handler = nullptr;
    host->inbox.clear();
    host->jobs.clear();
  }

  /// unregister_host plus a quiesce wait: returns only once no drain task is
  /// dispatching into the host, so the caller may destroy the object behind
  /// the (now cleared) handler.  This is the crash path of the chaos lane —
  /// plain unregister_host only guarantees that a drain observes the cleared
  /// handler *before its next dispatch*, not that an in-flight one finished.
  void detach_host(NodeId id) {
    std::shared_ptr<Host> host;
    {
      std::lock_guard<std::mutex> lk(hosts_mu_);
      const auto it = hosts_.find(id);
      if (it == hosts_.end()) return;
      host = it->second;
      hosts_.erase(it);
    }
    {
      std::lock_guard<std::mutex> lk(host->mu);
      host->handler = nullptr;
      host->inbox.clear();
      host->jobs.clear();
    }
    // An in-flight drain copied the handler before we cleared it and may be
    // mid-dispatch; `draining` stays true until that burst parks on the
    // emptied queues.  Crash-path only, so a short sleep-poll is fine.
    for (;;) {
      {
        std::lock_guard<std::mutex> lk(host->mu);
        if (!host->draining) return;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  bool is_registered(NodeId id) const override {
    std::lock_guard<std::mutex> lk(hosts_mu_);
    return hosts_.count(id) > 0;
  }

  void send(NodeId from, NodeId to, Msg msg) override {
    transmit(from, to,
             std::make_shared<const Bytes>(Codec::encode(msg)));
  }

  void broadcast(NodeId from, const std::vector<NodeId>& recipients,
                 const Msg& msg) override {
    // One serialization for the whole fan-out; receivers decode privately.
    const auto bytes = std::make_shared<const Bytes>(Codec::encode(msg));
    for (NodeId to : recipients) {
      if (to != from) transmit(from, to, bytes);
    }
  }

  std::uint64_t schedule(NodeId owner, double delay,
                         std::function<void()> fn) override {
    TOL_ENSURE(delay >= 0.0, "delay must be non-negative");
    const auto when = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(delay));
    std::lock_guard<std::mutex> lk(timer_mu_);
    if (stopping_) return 0;  // cancel(0) is a no-op
    const std::uint64_t id = next_timer_id_++;
    live_timers_.insert(id);
    const bool new_front = timers_.empty() || when < timers_.begin()->first;
    timers_.emplace(when, TimerEntry{id, owner, /*direct=*/false,
                                     std::move(fn)});
    // The timer thread sleeps until the earliest deadline; inserting a
    // later one does not change its wake-up time, so skip the notify (at
    // load, most timers are retransmission guards far in the future).
    if (new_front) timer_cv_.notify_all();
    return id;
  }

  void cancel(std::uint64_t timer_id) override {
    std::lock_guard<std::mutex> lk(timer_mu_);
    if (live_timers_.count(timer_id) > 0) cancelled_.insert(timer_id);
  }

  /// The wall-clock lane's nodes burn real CPU; the modelled cost is only
  /// honored when the runtime is configured to emulate slower hardware.
  void consume_cpu(NodeId node, double seconds) override {
    (void)node;
    if (!options_.honor_cpu_costs || seconds <= 0.0) return;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    while (std::chrono::steady_clock::now() < deadline) {
      // Busy-wait: the node's loop thread is genuinely occupied, which is
      // the semantics consume_cpu models.
    }
  }

  // --- runtime-specific surface --------------------------------------------

  /// Run `fn` on `owner`'s serial event loop (e.g. the initial closed-loop
  /// client submissions, which must not race the client's own loop).
  void post(NodeId owner, std::function<void()> fn) {
    const auto host = find_host(owner);
    if (!host) return;
    std::lock_guard<std::mutex> lk(host->mu);
    if (!host->handler) return;
    host->jobs.push_back(std::move(fn));
    maybe_start_drain_locked(host);
  }

  /// Attach (or detach, with nullptr) a chaos-lane fault injector.  Consulted
  /// on the sender path for every outbound bundle AFTER the authenticator is
  /// computed — injected corruption therefore always lands on authenticated
  /// bytes and dies in the receiver's HMAC check, never in a codec or
  /// handler.  The injector must outlive the runtime (the cluster harness
  /// owns both).
  void set_fault_injector(FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }

  /// Block / unblock a bidirectional pair, and partition semantics matching
  /// SimNetwork (a new grouping wholesale-replaces the previous one).
  void set_blocked(NodeId a, NodeId b, bool blocked) {
    std::lock_guard<std::mutex> lk(net_state_mu_);
    if (blocked) {
      blocked_.insert(ordered(a, b));
    } else {
      blocked_.erase(ordered(a, b));
    }
  }

  void partition(const std::vector<std::vector<NodeId>>& groups) {
    std::lock_guard<std::mutex> lk(net_state_mu_);
    partition_blocked_.clear();
    std::unordered_map<NodeId, int> group_of;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (NodeId n : groups[g]) group_of[n] = static_cast<int>(g);
    }
    std::vector<NodeId> all;
    for (const auto& [id, g] : group_of) {
      (void)g;
      all.push_back(id);
    }
    for (std::size_t i = 0; i < all.size(); ++i) {
      for (std::size_t j = i + 1; j < all.size(); ++j) {
        if (group_of[all[i]] != group_of[all[j]]) {
          partition_blocked_.insert(ordered(all[i], all[j]));
        }
      }
    }
  }

  void heal_partition() {
    std::lock_guard<std::mutex> lk(net_state_mu_);
    partition_blocked_.clear();
  }

  /// Fence off new sends/timers, join the timer thread, and wait until every
  /// node loop has gone idle.  Idempotent; called by the destructor.
  void stop() {
    stop_requested_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lk(timer_mu_);
      stopping_ = true;
      timer_cv_.notify_all();
    }
    if (timer_thread_.joinable()) timer_thread_.join();
    std::unique_lock<std::mutex> lk(tasks_mu_);
    tasks_cv_.wait(lk, [this]() { return tasks_in_flight_ == 0; });
  }

  // --- accounting ----------------------------------------------------------

  std::uint64_t dropped_messages() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::uint64_t reordered_messages() const {
    return reordered_.load(std::memory_order_relaxed);
  }
  /// Frames evicted from full inbound queues (drop-oldest), totalled.
  std::uint64_t overflow_dropped() const {
    return overflow_.load(std::memory_order_relaxed);
  }
  std::uint64_t overflow_dropped(NodeId id) const {
    const auto host = find_host(id);
    if (!host) return 0;
    std::lock_guard<std::mutex> lk(host->mu);
    return host->overflow;
  }
  /// Frames waiting in `id`'s bounded inbox — the wall-clock lane's queue*
  /// input to admission control (same meaning as SimNetwork's per-receiver
  /// FIFO depth, so both lanes feed the pressure loop identically).
  std::size_t queue_depth(NodeId id) const override {
    const auto host = find_host(id);
    if (!host) return 0;
    std::lock_guard<std::mutex> lk(host->mu);
    return host->inbox.size();
  }
  std::uint64_t decode_errors() const {
    return decode_errors_.load(std::memory_order_relaxed);
  }
  std::uint64_t handler_errors() const {
    return handler_errors_.load(std::memory_order_relaxed);
  }
  std::uint64_t delivered_frames() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  /// Bundle authenticators computed at senders (== bundles shipped); the
  /// amortization the flush window buys is bundled_frames / macs_computed.
  std::uint64_t macs_computed() const {
    return macs_computed_.load(std::memory_order_relaxed);
  }
  /// Frames carried inside those bundles.
  std::uint64_t bundled_frames() const {
    return bundled_frames_.load(std::memory_order_relaxed);
  }
  /// Bundles dropped whole because their HMAC tag did not verify.
  std::uint64_t auth_failures() const {
    return auth_failures_.load(std::memory_order_relaxed);
  }

  /// Test hook: enqueue raw bytes at `to` as if they arrived from `from`,
  /// bypassing the sender path — how a tampered or spoofed bundle reaches
  /// the authentication check.
  void inject_frame(NodeId from, NodeId to, Bytes raw) {
    enqueue_frame(to, Frame{from, std::make_shared<const Bytes>(std::move(raw))});
  }
  std::size_t live_timer_count() const {
    std::lock_guard<std::mutex> lk(timer_mu_);
    return live_timers_.size();
  }
  std::size_t cancelled_pending() const {
    std::lock_guard<std::mutex> lk(timer_mu_);
    return cancelled_.size();
  }

 private:
  struct Frame {
    NodeId from = 0;
    std::shared_ptr<const Bytes> bytes;
  };

  struct Host {
    mutable std::mutex mu;
    NodeId id = 0;
    Handler handler;
    std::deque<Frame> inbox;                    ///< bounded, drop-oldest
    std::deque<std::function<void()>> jobs;     ///< timers/posts, unbounded
    bool draining = false;
    std::uint64_t overflow = 0;
  };

  struct TimerEntry {
    std::uint64_t id = 0;  ///< 0 = internal (not cancellable)
    NodeId owner = 0;
    /// Internal dispatches (delay-shaped frame releases) run on the timer
    /// thread; user timers are posted onto the owner's loop.
    bool direct = false;
    std::function<void()> fn;
  };

  // Validation happens before the timer thread member starts: throwing
  // after a joinable std::thread is constructed would std::terminate.
  static Options validated(Options o) {
    TOL_ENSURE(o.inbound_capacity >= 1,
               "inbound queue capacity must be positive");
    return o;
  }

  static std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  std::shared_ptr<Host> find_host(NodeId id) const {
    std::lock_guard<std::mutex> lk(hosts_mu_);
    const auto it = hosts_.find(id);
    return it == hosts_.end() ? nullptr : it->second;
  }

  const LinkConfig& link_for(NodeId from, NodeId to) const {
    return (from >= options_.client_floor || to >= options_.client_floor)
               ? options_.client_link
               : options_.replica_link;
  }

  // --- authenticator batching ----------------------------------------------

  /// Pre-shared link key per directed pair, derived from the runtime seed
  /// (a closed system: every legitimate sender/receiver pair shares it).
  std::string pair_key(NodeId from, NodeId to) const {
    return "link:" + std::to_string(options_.seed) + ":" +
           std::to_string(from) + ">" + std::to_string(to);
  }

  static void put_varint(Bytes& out, std::uint64_t v) {
    while (v >= 0x80) {
      out.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
  }

  static bool get_varint(const Bytes& b, std::size_t& pos,
                         std::uint64_t& out) {
    out = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos >= b.size()) return false;
      const std::uint8_t byte = b[pos++];
      out |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return true;
    }
    return false;
  }

  /// Bundle layout: varint frame count, then per frame a varint length and
  /// the frame bytes, then the 32-byte HMAC-SHA256 tag over everything
  /// before it.
  std::shared_ptr<const Bytes> make_bundle(
      NodeId from, NodeId to,
      const std::vector<std::shared_ptr<const Bytes>>& frames) {
    Bytes out;
    std::size_t payload = 0;
    for (const auto& f : frames) payload += f->size() + 10;
    out.reserve(payload + crypto::Digest{}.size() + 4);
    put_varint(out, frames.size());
    for (const auto& f : frames) {
      put_varint(out, f->size());
      out.insert(out.end(), f->begin(), f->end());
    }
    const crypto::Digest tag = crypto::hmac_sha256(
        pair_key(from, to),
        std::string_view(reinterpret_cast<const char*>(out.data()),
                         out.size()));
    out.insert(out.end(), tag.begin(), tag.end());
    macs_computed_.fetch_add(1, std::memory_order_relaxed);
    bundled_frames_.fetch_add(frames.size(), std::memory_order_relaxed);
    return std::make_shared<const Bytes>(std::move(out));
  }

  void transmit(NodeId from, NodeId to,
                std::shared_ptr<const Bytes> bytes) {
    // The stop fence must cover the zero-delay fast path too: a handler
    // that sends on every delivery (closed-loop traffic) would otherwise
    // keep its own loop busy forever and stop() could never drain it.
    if (stop_requested_.load(std::memory_order_acquire)) return;
    if (options_.flush_window <= 0.0) {
      // One bundle (and one authenticator) per message.
      ship_bundle(from, to, make_bundle(from, to, {std::move(bytes)}));
      return;
    }
    // Nagle-style coalescing: a message onto a quiet channel ships at once
    // (batching must not tax the latency-critical first message of a burst);
    // messages that FOLLOW within the window — the N^2 fan-out bursts of a
    // loaded consensus step — buffer behind one flush timer and share one
    // authenticator.  Per pair that bounds the MAC (and shaping) rate to two
    // bundles per window, and FIFO order is preserved: while anything is
    // buffered or armed, nothing bypasses the queue.
    const auto window =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.flush_window));
    bool ship_now = false;
    bool arm = false;
    std::vector<std::shared_ptr<const Bytes>> full;  // size-triggered flush
    {
      BundleShard& shard = shard_for(from);
      std::lock_guard<std::mutex> lk(shard.mu);
      const auto now_tp = std::chrono::steady_clock::now();
      PairState& pair = shard.pairs[{from, to}];
      if (pair.queued.empty() && !pair.armed &&
          now_tp - pair.last_ship >= window) {
        pair.last_ship = now_tp;
        ship_now = true;
      }
      if (!ship_now) {
        pair.queued.push_back(std::move(bytes));
        if (pair.queued.size() >= options_.flush_max_frames) {
          // Full bundle: ship at once.  A pending flush timer (if armed)
          // finds an empty queue and no-ops.
          full.swap(pair.queued);
          pair.last_ship = now_tp;
        } else if (!pair.armed) {
          pair.armed = true;
          arm = true;
        }
      }
    }
    if (ship_now) {
      // Outside the shard lock: make_bundle runs real crypto and
      // ship_bundle takes the shaping locks.
      ship_bundle(from, to, make_bundle(from, to, {std::move(bytes)}));
      return;
    }
    if (!full.empty()) {
      ship_bundle(from, to, make_bundle(from, to, full));
      return;
    }
    if (!arm) return;  // an earlier message already armed the flush
    // Arm the per-pair flush: a direct (timer-thread) dispatch, like the
    // delay-shaped frame releases.
    const auto when =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.flush_window));
    std::lock_guard<std::mutex> lk(timer_mu_);
    if (stopping_) return;
    const bool new_front = timers_.empty() || when < timers_.begin()->first;
    timers_.emplace(when, TimerEntry{0, to, /*direct=*/true,
                                     [this, from, to]() {
                                       flush_pair(from, to);
                                     }});
    if (new_front) timer_cv_.notify_all();
  }

  void flush_pair(NodeId from, NodeId to) {
    std::vector<std::shared_ptr<const Bytes>> frames;
    {
      BundleShard& shard = shard_for(from);
      std::lock_guard<std::mutex> lk(shard.mu);
      const auto it = shard.pairs.find({from, to});
      if (it == shard.pairs.end()) return;
      frames.swap(it->second.queued);
      it->second.armed = false;
      if (!frames.empty()) {
        it->second.last_ship = std::chrono::steady_clock::now();
      }
    }
    if (frames.empty()) return;
    ship_bundle(from, to, make_bundle(from, to, frames));
  }

  /// Link shaping, FIFO-channel clamping, and delivery of one authenticated
  /// bundle — the loss/jitter/reorder draws apply per bundle, exactly like
  /// the packets a real network would carry.
  void ship_bundle(NodeId from, NodeId to,
                   std::shared_ptr<const Bytes> bytes) {
    if (stop_requested_.load(std::memory_order_acquire)) return;
    {
      std::lock_guard<std::mutex> lk(net_state_mu_);
      const auto key = ordered(from, to);
      if (blocked_.count(key) > 0 || partition_blocked_.count(key) > 0) {
        return;
      }
    }
    if (FaultInjector* fi =
            fault_injector_.load(std::memory_order_acquire)) {
      switch (fi->on_bundle(from, to)) {
        case FaultInjector::Action::kDrop:
          return;
        case FaultInjector::Action::kCorrupt: {
          // Corrupt a private copy: broadcast fan-outs share `bytes`, and
          // only this directed pair drew the fault.
          Bytes mangled = *bytes;
          fi->corrupt(mangled);
          bytes = std::make_shared<const Bytes>(std::move(mangled));
          break;
        }
        case FaultInjector::Action::kDeliver:
          break;
      }
    }
    const LinkConfig& cfg = link_for(from, to);
    double delay = cfg.base_delay;
    {
      std::lock_guard<std::mutex> lk(rng_mu_);
      if (rng_.bernoulli(cfg.loss)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (cfg.jitter > 0.0) delay += rng_.uniform(0.0, cfg.jitter);
      if (cfg.reorder > 0.0 && rng_.bernoulli(cfg.reorder)) {
        delay += cfg.reorder_delay;
        reordered_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    const auto now_tp = std::chrono::steady_clock::now();
    auto when = now_tp + std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(delay));
    {
      // FIFO per directed pair, like the TCP channels a real deployment
      // runs on: jitter and reorder delays stretch latency, but a message
      // never overtakes an earlier one on the same channel.  (MinBFT's
      // counter-freshness check permanently discards a leapfrogged
      // counter, so a transport without this guarantee stalls the
      // protocol; the simulator gets the same property from its per-node
      // arrival-order inbound queues.)
      std::lock_guard<std::mutex> lk(channel_mu_);
      auto& frontier = channel_frontier_[{from, to}];
      if (when < frontier) when = frontier;
      frontier = when;
    }
    if (when <= now_tp) {
      enqueue_frame(to, Frame{from, std::move(bytes)});
      return;
    }
    std::lock_guard<std::mutex> lk(timer_mu_);
    if (stopping_) return;
    const bool new_front = timers_.empty() || when < timers_.begin()->first;
    timers_.emplace(
        when,
        TimerEntry{0, to, /*direct=*/true,
                   [this, to, f = Frame{from, std::move(bytes)}]() mutable {
                     enqueue_frame(to, std::move(f));
                   }});
    if (new_front) timer_cv_.notify_all();
  }

  void enqueue_frame(NodeId to, Frame frame) {
    const auto host = find_host(to);
    if (!host) return;
    std::lock_guard<std::mutex> lk(host->mu);
    if (!host->handler) return;
    if (host->inbox.size() >= options_.inbound_capacity) {
      host->inbox.pop_front();
      host->overflow += 1;
      overflow_.fetch_add(1, std::memory_order_relaxed);
    }
    host->inbox.push_back(std::move(frame));
    maybe_start_drain_locked(host);
  }

  // Requires host->mu held.
  void maybe_start_drain_locked(const std::shared_ptr<Host>& host) {
    if (host->draining) return;
    host->draining = true;
    {
      std::lock_guard<std::mutex> lk(tasks_mu_);
      ++tasks_in_flight_;
    }
    pool_->submit([this, host]() { drain(host); });
  }

  void drain(const std::shared_ptr<Host>& host) {
    // Dispatch a bounded burst, then requeue: one hot node cannot pin a
    // pool worker while other loops starve.
    for (int burst = 0; burst < kDrainBurst; ++burst) {
      std::function<void()> job;
      Frame frame;
      Handler handler;
      bool have_frame = false;
      {
        std::lock_guard<std::mutex> lk(host->mu);
        if (!host->jobs.empty()) {
          job = std::move(host->jobs.front());
          host->jobs.pop_front();
        } else if (!host->inbox.empty()) {
          frame = std::move(host->inbox.front());
          host->inbox.pop_front();
          handler = host->handler;  // copy: unregister may clear it
          have_frame = true;
        } else {
          host->draining = false;
          finish_task();
          return;
        }
      }
      try {
        if (job) {
          job();
        } else if (have_frame && handler) {
          dispatch_bundle(host->id, frame, handler);
        }
      } catch (const std::exception&) {
        // A throwing job must not take down the pool worker; surface
        // through the counter (tests assert it stays zero).
        handler_errors_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    pool_->submit([this, host]() { drain(host); });  // keep the task slot
  }

  /// Authenticate one inbound bundle FIRST, then parse and dispatch its
  /// frames in order.  Verifying the tag before touching the bundle
  /// structure means any tampering — header, frame bytes, or tag — dies as
  /// one auth failure; the parser below only ever sees bytes an honest
  /// sender authenticated, so a decode error there flags a sender-side bug
  /// (or an injected frame too short to even carry a tag), never line noise.
  void dispatch_bundle(NodeId self, const Frame& frame,
                       const Handler& handler) {
    const Bytes& b = *frame.bytes;
    const std::size_t tag_size = crypto::Digest{}.size();
    if (b.size() < tag_size + 1) {
      // Not even a tag plus a frame-count byte: not a bundle at all.
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const std::size_t body = b.size() - tag_size;
    crypto::Digest tag{};
    std::copy(b.begin() + static_cast<std::ptrdiff_t>(body), b.end(),
              tag.begin());
    if (!crypto::hmac_verify(
            pair_key(frame.from, self),
            std::string_view(reinterpret_cast<const char*>(b.data()), body),
            tag)) {
      auth_failures_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::size_t pos = 0;
    std::uint64_t count = 0;
    if (!get_varint(b, pos, count) || pos > body || count > body) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::vector<std::pair<std::size_t, std::size_t>> spans;
    spans.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t len = 0;
      if (!get_varint(b, pos, len) || pos > body ||
          len > body - pos) {
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      spans.emplace_back(pos, static_cast<std::size_t>(len));
      pos += static_cast<std::size_t>(len);
    }
    if (pos != body) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    for (const auto& [off, len] : spans) {
      const auto msg = Codec::decode(b.data() + off, len);
      if (!msg) {
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      delivered_.fetch_add(1, std::memory_order_relaxed);
      try {
        handler(frame.from, *msg);
      } catch (const std::exception&) {
        // A throwing handler must not poison the rest of the bundle (or
        // the pool worker); surface through the counter.
        handler_errors_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  void finish_task() {
    std::lock_guard<std::mutex> lk(tasks_mu_);
    if (--tasks_in_flight_ == 0) tasks_cv_.notify_all();
  }

  void timer_loop() {
    std::unique_lock<std::mutex> lk(timer_mu_);
    while (!stopping_) {
      if (timers_.empty()) {
        timer_cv_.wait(lk);
        continue;
      }
      const auto when = timers_.begin()->first;
      if (when > std::chrono::steady_clock::now()) {
        timer_cv_.wait_until(lk, when);
        continue;
      }
      // Collect everything due, then dispatch outside the lock (posting
      // locks host mutexes; holding timer_mu_ across that invites
      // lock-order cycles with schedule()).
      std::vector<TimerEntry> due;
      const auto now_tp = std::chrono::steady_clock::now();
      while (!timers_.empty() && timers_.begin()->first <= now_tp) {
        TimerEntry e = std::move(timers_.begin()->second);
        timers_.erase(timers_.begin());
        if (e.id != 0) {
          live_timers_.erase(e.id);
          if (cancelled_.erase(e.id) > 0) continue;
        }
        due.push_back(std::move(e));
      }
      lk.unlock();
      for (TimerEntry& e : due) {
        if (e.direct) {
          e.fn();
        } else {
          post(e.owner, std::move(e.fn));
        }
      }
      lk.lock();
    }
  }

  static constexpr int kDrainBurst = 64;

  util::ThreadPool* pool_;
  Options options_;

  mutable std::mutex rng_mu_;
  Rng rng_;

  const std::chrono::steady_clock::time_point start_;

  mutable std::mutex hosts_mu_;
  std::unordered_map<NodeId, std::shared_ptr<Host>> hosts_;

  mutable std::mutex net_state_mu_;
  std::set<std::pair<NodeId, NodeId>> blocked_;
  std::set<std::pair<NodeId, NodeId>> partition_blocked_;

  std::mutex channel_mu_;
  /// Latest scheduled arrival per directed pair (the FIFO frontier).
  std::map<std::pair<NodeId, NodeId>,
           std::chrono::steady_clock::time_point>
      channel_frontier_;

  /// Per-pair coalescing state (only touched when flush_window > 0):
  /// `queued` holds frames awaiting the armed flush; `last_ship` is the
  /// last bundle departure — a quiet channel (no departure within the
  /// window) ships the next message immediately, Nagle-style.  Sharded by
  /// sender so the hot path never funnels every node through one mutex.
  struct PairState {
    std::vector<std::shared_ptr<const Bytes>> queued;
    bool armed = false;
    std::chrono::steady_clock::time_point last_ship{};
  };
  struct BundleShard {
    std::mutex mu;
    std::map<std::pair<NodeId, NodeId>, PairState> pairs;
  };
  static constexpr std::size_t kBundleShards = 64;
  BundleShard& shard_for(NodeId from) {
    return bundle_shards_[static_cast<std::size_t>(from) % kBundleShards];
  }
  std::array<BundleShard, kBundleShards> bundle_shards_;

  std::atomic<bool> stop_requested_{false};  ///< lock-free send fence

  /// Chaos-lane fault injector (nullptr = faults off); owned by the caller.
  std::atomic<FaultInjector*> fault_injector_{nullptr};

  mutable std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  bool stopping_ = false;
  std::uint64_t next_timer_id_ = 1;
  std::multimap<std::chrono::steady_clock::time_point, TimerEntry> timers_;
  std::unordered_set<std::uint64_t> live_timers_;
  std::unordered_set<std::uint64_t> cancelled_;

  std::mutex tasks_mu_;
  std::condition_variable tasks_cv_;
  int tasks_in_flight_ = 0;

  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> reordered_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
  std::atomic<std::uint64_t> handler_errors_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> macs_computed_{0};
  std::atomic<std::uint64_t> bundled_frames_{0};
  std::atomic<std::uint64_t> auth_failures_{0};

  std::thread timer_thread_;  ///< last member: starts after state is ready
};

}  // namespace tolerance::net
