// Deterministic fault injection for the wall-clock lane.
//
// A FaultInjector sits on AsyncRuntime's sender path (set_fault_injector):
// every authenticated bundle about to be shaped consults it and is either
// delivered untouched, dropped, or delivered with seeded bit flips.  The
// injector models the transport-level half of a chaos run — targeted
// directed-pair blackholes and frame corruption; node-level faults (crash,
// restart, event-loop stalls) are executed by the cluster harness, which
// owns the node objects the transport only routes to.
//
// Corrupted bundles MUST die in the authentication layer: a bit flip
// anywhere in the bundle (header, frame bytes, or tag) makes the HMAC check
// fail, so the receiver counts an auth failure and never hands garbage to a
// codec or a protocol handler.  The chaos CI gate (zero decode/handler
// errors under corruption) leans on exactly this property.
//
// Determinism: all probability draws come from one seeded Rng behind a
// mutex.  Concurrent senders serialize on it, so a multi-threaded run is
// not trace-identical across schedules — what IS reproducible is the
// FaultPlan itself (which pairs drop, which senders corrupt, when), which
// is what makes a chaos failure re-runnable.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "tolerance/net/transport.hpp"
#include "tolerance/util/rng.hpp"

namespace tolerance::net {

/// What a scheduled chaos event does.  Crash/restart/stall act on a node and
/// are executed by the cluster harness; corrupt/drop act on the transport
/// and toggle injector rules for `duration` seconds.
enum class FaultKind {
  kCrash,          ///< deregister the node and destroy its state
  kRestart,        ///< re-create the node (bumped USIG epoch) and rejoin
  kCorruptFrames,  ///< flip bits in bundles sent by `node` (rate, duration)
  kDropPair,       ///< blackhole the directed pair node -> peer (rate, duration)
  kStallLoop,      ///< busy-occupy `node`'s event loop for `duration`
};

/// One scheduled fault.  `at` is seconds from the start of the chaos run.
struct FaultEvent {
  /// Wildcard peer: apply the rule to every directed pair from `node`.
  static constexpr NodeId kAllPeers = ~NodeId{0};

  double at = 0.0;
  FaultKind kind = FaultKind::kCrash;
  NodeId node = 0;
  NodeId peer = kAllPeers;  ///< kDropPair target (kAllPeers = fan-out)
  double duration = 0.0;    ///< rule lifetime (corrupt/drop) or stall length
  double rate = 1.0;        ///< per-bundle probability (corrupt/drop)
};

/// A seeded, time-ordered chaos schedule.  The seed feeds the injector's
/// probability draws; the events are executed by the harness control loop.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultEvent> events;

  /// Events sorted by `at` (stable, so same-instant events keep authoring
  /// order — a crash authored before a restart stays a crash first).
  FaultPlan& normalize();
};

class FaultInjector {
 public:
  using Bytes = std::vector<std::uint8_t>;

  enum class Action { kDeliver, kDrop, kCorrupt };

  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  // --- rule surface (harness control thread) -------------------------------

  /// Blackhole the directed pair from -> to with probability `rate` per
  /// bundle.  `to` may be FaultEvent::kAllPeers.  rate <= 0 clears the rule.
  void set_drop(NodeId from, NodeId to, double rate);
  /// Flip bits in bundles sent by `from` with probability `rate` per bundle.
  /// rate <= 0 clears the rule.
  void set_corrupt(NodeId from, double rate);
  void clear_all();

  // --- sender path (AsyncRuntime, any loop thread) -------------------------

  /// Verdict for one outbound bundle.  Drop rules win over corruption (a
  /// blackholed bundle never reaches the corruptor, as on a real path).
  Action on_bundle(NodeId from, NodeId to);

  /// Flip 1-4 seeded bits in `bytes` (no-op on an empty buffer).
  void corrupt(Bytes& bytes);

  // --- accounting ----------------------------------------------------------

  std::uint64_t injected_drops() const;
  std::uint64_t injected_corruptions() const;
  std::size_t active_rules() const;

 private:
  mutable std::mutex mu_;
  Rng rng_;
  /// Directed-pair drop rates; kAllPeers entries match any destination.
  std::map<std::pair<NodeId, NodeId>, double> drop_rates_;
  std::map<NodeId, double> corrupt_rates_;
  std::uint64_t drops_ = 0;
  std::uint64_t corruptions_ = 0;
};

}  // namespace tolerance::net
