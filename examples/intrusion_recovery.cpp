// Local-level deep dive (Prob. 1, the machine-replacement problem):
//  * solve the DeltaR = 15 cycle problem exactly with Incremental Pruning,
//  * solve the same problem with Algorithm 1 (threshold parametrization +
//    the Cross-Entropy Method, the paper's §VIII configuration),
//  * verify Theorem 1's threshold structure and Corollary 1's monotonicity.
#include <iostream>

#include "tolerance/pomdp/assumptions.hpp"
#include "tolerance/solvers/cem.hpp"
#include "tolerance/solvers/incremental_pruning.hpp"
#include "tolerance/solvers/objective.hpp"

int main() {
  using namespace tolerance;
  pomdp::NodeParams params;
  params.p_attack = 0.1;
  params.p_crash_healthy = 1e-5;
  params.p_crash_compromised = 1e-3;
  params.p_update = 2e-2;
  const pomdp::NodeModel model(params);
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  const int delta_r = 15;

  // The structural results apply iff assumptions A-E hold; check them.
  const auto report = pomdp::check_theorem1(model, obs);
  std::cout << "Theorem 1 assumptions hold: " << std::boolalpha << report.all()
            << "\n";

  // --- Exact DP (Incremental Pruning). ---
  const auto ip = solvers::IncrementalPruning::solve_cycle(model, obs, delta_r);
  std::cout << "\nIncremental Pruning (exact): cycle-average cost = "
            << ip.average_cost << "\nper-stage thresholds alpha*_t: ";
  for (int t = 1; t < delta_r; t += 2) {
    std::cout << solvers::IncrementalPruning::recovery_threshold(
                     ip.value_functions[static_cast<std::size_t>(t - 1)])
              << ' ';
  }
  std::cout << "\n(non-decreasing within the cycle — Corollary 1)\n";

  // --- Algorithm 1 with CEM (Table 8 hyperparameters). ---
  solvers::RecoveryObjective::Options opts;
  opts.episodes = 50;   // M
  opts.horizon = 4 * delta_r;
  const solvers::RecoveryObjective objective(model, obs, delta_r, opts);
  Rng rng(7);
  const solvers::CrossEntropyMethod cem;  // K=100, lambda=0.15
  const auto result =
      cem.optimize(objective, objective.dimension(), 2000, rng);
  std::cout << "\nAlgorithm 1 (CEM): cost = " << result.best_value
            << " after " << result.evaluations << " evaluations\n"
            << "learned thresholds theta_1.." << objective.dimension() << ": ";
  for (double th : result.best_x) std::cout << th << ' ';
  std::cout << "\n\nBoth land near the same cost: the threshold "
               "parametrization (Thm. 1) loses nothing\nwhile avoiding "
               "PSPACE-hard exact planning (§VI).\n";
  return 0;
}
