// Full-stack scenario: the complete TOLERANCE pipeline of §VIII plus the
// consensus layer.
//
//  Phase 1 (training, §VIII-A): fit the intrusion-detection channel Ẑ from
//           labeled IDS samples and solve the replication CMDP (Alg. 2).
//  Phase 2 (evaluation): run the emulated testbed under TOLERANCE and under
//           NO-RECOVERY; print T(A), T(R), F(R).
//  Phase 3 (consensus): drive a MinBFT cluster through a Byzantine
//           compromise, a feedback recovery, a crash-triggered view change
//           and a join — the Fig. 17 flows.
#include <iostream>

#include "tolerance/consensus/minbft_cluster.hpp"
#include "tolerance/core/tolerance_system.hpp"
#include "tolerance/solvers/cmdp_lp.hpp"

int main() {
  using namespace tolerance;

  // ---------- Phase 1: training ----------
  Rng rng(2024);
  std::cout << "fitting detector from labeled IDS samples...\n";
  const auto detector = emulation::fit_pooled_detector(2000, 11, 80.0, rng);
  std::cout << "  KL(Zhat(.|H) || Zhat(.|C)) = "
            << detector.kl_healthy_compromised << "\n";
  const auto cmdp = pomdp::SystemCmdp::parametric(13, 1, 0.9, 0.95, 0.3);
  const auto replication = solvers::solve_replication_lp(cmdp);
  std::cout << "  replication thresholds: beta1=" << replication.beta1
            << " beta2=" << replication.beta2 << "\n";

  // ---------- Phase 2: emulation ----------
  core::EvaluationConfig config;
  config.initial_nodes = 6;
  config.delta_r = solvers::kNoBtr;
  config.horizon = 500;
  config.f = 2;
  config.recovery_threshold = 0.76;
  config.node_params.p_attack = 0.1;
  config.testbed.attacker.start_probability = 0.1;

  for (const auto kind :
       {core::StrategyKind::Tolerance, core::StrategyKind::NoRecovery}) {
    config.strategy = kind;
    const core::Evaluator evaluator(
        config, detector,
        kind == core::StrategyKind::Tolerance
            ? std::optional<solvers::CmdpSolution>(replication)
            : std::nullopt);
    const auto r = evaluator.run(7);
    std::cout << "\n" << core::to_string(kind) << " over " << config.horizon
              << " steps:\n"
              << "  T(A) availability       = " << r.availability << "\n"
              << "  T(R) time-to-recovery   = " << r.time_to_recovery
              << " steps\n"
              << "  F(R) recovery frequency = " << r.recovery_frequency << "\n"
              << "  recoveries/additions    = " << r.recoveries << "/"
              << r.additions << "\n";
  }

  // ---------- Phase 3: consensus layer ----------
  std::cout << "\nMinBFT cluster (N=4, f=1):\n";
  consensus::MinBftConfig cfg;
  cfg.f = 1;
  cfg.view_change_timeout = 2.0;
  cfg.request_retry_timeout = 1.0;
  net::LinkConfig link;
  link.loss = 0.0;
  consensus::MinBftCluster cluster(4, cfg, 5, link);
  auto& client = cluster.add_client();
  std::cout << "  write: " << cluster.submit_and_run(client, "x=1").value()
            << "\n";
  cluster.replica(2).set_mode(consensus::ByzantineMode::Random);
  std::cout << "  write with Byzantine replica 2: "
            << cluster.submit_and_run(client, "x=2").value() << "\n";
  cluster.recover_replica(2);  // what a node controller triggers (Fig. 17d)
  std::cout << "  replica 2 recovered, state size "
            << cluster.replica(2).executed_count() << "\n";
  cluster.crash_replica(0);  // leader crash => view change (Fig. 17b)
  std::optional<std::string> after;
  client.submit("x=3", [&](std::uint64_t, const std::string& r, double) {
    after = r;
  });
  cluster.run_for(30.0);
  std::cout << "  write after leader crash + view change: " << after.value()
            << " (view " << cluster.replica(1).view() << ")\n";
  const auto joined = cluster.join_new_replica();  // Fig. 17e
  std::cout << "  joined replica " << joined << ", membership now "
            << cluster.replica(1).membership().size() << " nodes\n";
  std::cout << "\ndone — all three phases of the TOLERANCE pipeline ran.\n";
  return 0;
}
