// Global-level deep dive (Prob. 2, the inventory-replenishment problem):
// build the system kernel f_S two ways (parametric and estimated from node
// simulations), solve the CMDP with Algorithm 2, inspect the
// threshold-mixture structure (Thm. 2), and validate by rollout.
#include <iostream>

#include "tolerance/pomdp/assumptions.hpp"
#include "tolerance/solvers/cmdp_lp.hpp"
#include "tolerance/solvers/threshold_policy.hpp"

int main() {
  using namespace tolerance;
  const int smax = 13, f = 3;
  const double eps_a = 0.9;

  // Kernel route 1: parametric binomial survival/recovery, in a crash-heavy
  // regime where additions are genuinely needed (§VIII-D finding iii).
  const auto parametric =
      pomdp::SystemCmdp::parametric(smax, f, eps_a, 0.88, 0.02);
  // Kernel route 2: estimated from simulations of Prob. 1 (the paper's way).
  pomdp::NodeParams params;
  params.p_attack = 0.1;
  params.p_update = 2e-2;
  params.p_crash_healthy = 1e-5;
  params.p_crash_compromised = 1e-3;
  const pomdp::NodeModel model(params);
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  Rng rng(3);
  const auto estimated = pomdp::SystemCmdp::estimate_from_node_simulation(
      smax, f, eps_a, model, obs,
      solvers::ThresholdPolicy::constant(0.76).as_policy(),
      /*episodes=*/10, /*horizon=*/2000, rng);

  for (const auto* cmdp : {&parametric, &estimated}) {
    const bool is_param = cmdp == &parametric;
    std::cout << (is_param ? "\n== parametric kernel ==\n"
                           : "\n== kernel estimated from Prob. 1 ==\n");
    const auto check = pomdp::check_theorem2(*cmdp);
    std::cout << "Thm. 2 assumptions B/C/D: " << check.b_full_support << '/'
              << check.c_monotone << '/' << check.d_tail_supermodular
              << "  (Alg. 2 is exact regardless — §VI)\n";
    const auto sol = solvers::solve_replication_lp(*cmdp);
    if (sol.status != lp::LpStatus::Optimal) {
      std::cout << "LP infeasible — raise smax or lower epsilon_A\n";
      continue;
    }
    std::cout << "pi(add|s): ";
    for (double p : sol.add_probability) std::cout << p << ' ';
    std::cout << "\nthresholds beta1=" << sol.beta1 << " beta2=" << sol.beta2
              << " kappa=" << sol.kappa
              << " randomized states=" << sol.num_randomized_states
              << "\nE[cost]=" << sol.average_cost
              << " availability=" << sol.availability << '\n';

    // Rollout validation: the long-run empirical availability matches the
    // LP's stationary prediction.
    Rng roll(11);
    int s = smax;
    long available = 0;
    const int horizon = 100000;
    for (int t = 0; t < horizon; ++t) {
      if (cmdp->available(s)) ++available;
      s = cmdp->step(s, sol.act(s, roll), roll);
    }
    std::cout << "rollout availability over " << horizon
              << " steps: " << static_cast<double>(available) / horizon
              << '\n';
  }
  return 0;
}
