// Quickstart: the two control problems of TOLERANCE in ~60 lines.
//
//  1. Local level  (Prob. 1): compute an optimal intrusion-recovery strategy
//     for one node and simulate it.
//  2. Global level (Prob. 2): compute the optimal replication strategy with
//     Algorithm 2's linear program.
//
// Build: cmake -B build -G Ninja && cmake --build build --target quickstart
// Run:   ./build/examples/quickstart
#include <iostream>

#include "tolerance/pomdp/node_simulator.hpp"
#include "tolerance/solvers/cmdp_lp.hpp"
#include "tolerance/solvers/incremental_pruning.hpp"
#include "tolerance/solvers/threshold_policy.hpp"

int main() {
  using namespace tolerance;

  // --- The node model (kernel (2)) and IDS channel (Table 8). ---
  pomdp::NodeParams params;
  params.p_attack = 0.1;           // pA
  params.p_crash_healthy = 1e-5;   // pC1
  params.p_crash_compromised = 1e-3;  // pC2
  params.p_update = 2e-2;          // pU
  params.eta = 2.0;                // cost trade-off in (5)
  const pomdp::NodeModel model(params);
  const auto obs = pomdp::BetaBinObservationModel::paper_default();

  // --- Local level: exact threshold strategy via Incremental Pruning. ---
  const auto dp =
      solvers::IncrementalPruning::solve_discounted(model, obs, 0.99);
  const double alpha =
      solvers::IncrementalPruning::recovery_threshold(dp.value_functions[0]);
  std::cout << "optimal recovery threshold alpha* = " << alpha << "\n";

  const auto policy = solvers::ThresholdPolicy::constant(alpha);
  const pomdp::NodeSimulator simulator(model, obs);
  Rng rng(42);
  // Episodes shard across hardware threads (TOLERANCE_THREADS overrides);
  // results are bit-identical at any thread count — see README "Parallel
  // execution".
  const auto stats = simulator.run_many(policy.as_policy(), 1000, 20, rng);
  std::cout << "simulated 20x1000 steps:\n"
            << "  avg cost J          = " << stats.avg_cost << "\n"
            << "  time-to-recovery    = " << stats.avg_time_to_recovery
            << " steps\n"
            << "  recovery frequency  = " << stats.recovery_frequency << "\n"
            << "  availability        = " << stats.availability << "\n";

  // --- Global level: replication strategy via the occupancy LP (Alg. 2). ---
  // A regime with frequent crashes (weak q_recover), where adaptive
  // replication genuinely matters (§VIII-D, finding iii).
  const auto cmdp = pomdp::SystemCmdp::parametric(
      /*smax=*/13, /*f=*/2, /*epsilon_a=*/0.9,
      /*q_healthy=*/0.88, /*q_recover=*/0.02);
  const auto replication = solvers::solve_replication_lp(cmdp);
  std::cout << "\nreplication strategy (add a node when s <= beta):\n"
            << "  beta1 = " << replication.beta1
            << ", beta2 = " << replication.beta2
            << ", kappa = " << replication.kappa << "\n"
            << "  expected cost E[s]  = " << replication.average_cost << "\n"
            << "  availability        = " << replication.availability
            << " (constraint: >= 0.9)\n";
  return 0;
}
