// Fig. 9: mean compute time of Algorithm 2 (the occupancy-measure LP) as the
// state space smax grows from 4 to 2048 (epsilon_A = 0.9, f = 3).
//
// Two columns per size: a cold solve (sparse revised simplex from the
// policy crash basis) and a warm re-solve from the optimal basis — the
// repeated-solve pattern of epsilon_A sweeps and control-loop re-solves.
#include <iostream>

#include "bench_common.hpp"
#include "tolerance/solvers/cmdp_lp.hpp"
#include "tolerance/util/stopwatch.hpp"

int main() {
  using namespace tolerance;
  bench::header("Fig. 9 — Alg. 2 LP solve time vs smax", "Fig. 9");
  ConsoleTable table({"smax", "cold (s)", "warm (s)", "LP pivots",
                      "avg cost E[s]", "availability"});
  const int cap = bench::scaled(512, 2048);
  for (int smax = 4; smax <= cap; smax *= 2) {
    const auto cmdp =
        pomdp::SystemCmdp::parametric(smax, 3, 0.9, 0.95, 0.3, 1e-4);
    Stopwatch clock;
    const auto sol = solvers::solve_replication_lp(cmdp);
    const double cold_seconds = clock.elapsed_seconds();
    clock.reset();
    const auto resolve = solvers::solve_replication_lp(cmdp, {}, &sol.basis);
    const double warm_seconds = clock.elapsed_seconds();
    const bool ok = sol.status == lp::LpStatus::Optimal &&
                    resolve.status == lp::LpStatus::Optimal;
    table.add_row({std::to_string(smax), ConsoleTable::num(cold_seconds, 3),
                   ConsoleTable::num(warm_seconds, 3),
                   std::to_string(sol.lp_iterations),
                   ok ? ConsoleTable::num(sol.average_cost, 2) : "-",
                   ok ? ConsoleTable::num(sol.availability, 3)
                      : "infeasible"});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: cold solve time grows polynomially with "
               "smax (the paper reports ~2 minutes at smax = 2048 with CBC); "
               "warm re-solves from the previous basis stay an order of "
               "magnitude cheaper (see BENCH_solvers.json for the tracked "
               "speedups).\n";
  return 0;
}
