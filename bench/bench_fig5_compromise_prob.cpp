// Fig. 5: probability that a node is compromised or crashed by time-step t
// when no recoveries occur, for pA in {0.1, 0.05, 0.025, 0.01}.
// The failure time is geometric with rate 1 - (1-pA)(1-pC1) (§V-A); we print
// both the closed form and a Monte-Carlo check through kernel (2).
#include <iostream>

#include "bench_common.hpp"
#include "tolerance/pomdp/node_simulator.hpp"
#include "tolerance/stats/distributions.hpp"

int main() {
  using namespace tolerance;
  bench::header("Fig. 5 — P[compromised or crashed by t], no recoveries",
                "Fig. 5");
  const double p_attacks[] = {0.1, 0.05, 0.025, 0.01};
  ConsoleTable table({"t", "pA=0.1", "pA=0.05", "pA=0.025", "pA=0.01",
                      "pA=0.1 (sim)"});

  // Monte-Carlo check for the first curve through the full kernel (2).
  const int horizon = 100;
  const int episodes = bench::scaled(2000, 20000);
  std::vector<double> failed_by(static_cast<std::size_t>(horizon) + 1, 0.0);
  {
    pomdp::NodeParams params = bench::paper_node_params(0.1);
    params.p_update = 0.0;  // Fig. 5 hyperparameters: pU = 0
    const pomdp::NodeModel model(params);
    Rng rng(1);
    for (int e = 0; e < episodes; ++e) {
      pomdp::NodeState s = pomdp::NodeState::Healthy;
      for (int t = 1; t <= horizon; ++t) {
        if (s == pomdp::NodeState::Healthy) {
          const double u = rng.uniform();
          const double to_crash =
              model.transition(s, pomdp::NodeAction::Wait,
                               pomdp::NodeState::Crashed);
          const double to_healthy =
              model.transition(s, pomdp::NodeAction::Wait,
                               pomdp::NodeState::Healthy);
          if (u < to_crash) {
            s = pomdp::NodeState::Crashed;
          } else if (u >= to_crash + to_healthy) {
            s = pomdp::NodeState::Compromised;
          }
        }
        if (s != pomdp::NodeState::Healthy) {
          failed_by[static_cast<std::size_t>(t)] += 1.0;
        }
      }
    }
  }

  for (int t = 10; t <= horizon; t += 10) {
    std::vector<std::string> row{std::to_string(t)};
    for (double pa : p_attacks) {
      const double p_fail = 1.0 - (1.0 - pa) * (1.0 - 1e-5);
      row.push_back(
          ConsoleTable::num(stats::GeometricDist(p_fail).cdf(t), 4));
    }
    row.push_back(ConsoleTable::num(
        failed_by[static_cast<std::size_t>(t)] / episodes, 4));
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: curves rise with t; higher pA rises"
               " faster (geometric failure time).\n";
  return 0;
}
