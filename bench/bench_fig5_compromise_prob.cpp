// Fig. 5: probability that a node is compromised or crashed by time-step t
// when no recoveries occur, for pA in {0.1, 0.05, 0.025, 0.01}.
// The failure time is geometric with rate 1 - (1-pA)(1-pC1) (§V-A); we print
// both the closed form and a Monte-Carlo check through kernel (2).
//
// The Monte-Carlo episodes are sharded across the ParallelRunner: each
// episode runs on its own Rng::stream child and reports the (integer) step
// of first failure, so the tallies are exact and thread-count independent.
#include <iostream>

#include "bench_common.hpp"
#include "tolerance/pomdp/node_simulator.hpp"
#include "tolerance/stats/distributions.hpp"

int main(int argc, char** argv) {
  using namespace tolerance;
  bench::header("Fig. 5 — P[compromised or crashed by t], no recoveries",
                "Fig. 5");
  const int threads = bench::parse_threads(argc, argv);
  bench::print_threads(threads);
  const double p_attacks[] = {0.1, 0.05, 0.025, 0.01};
  ConsoleTable table({"t", "pA=0.1", "pA=0.05", "pA=0.025", "pA=0.01",
                      "pA=0.1 (sim)"});

  // Monte-Carlo check for the first curve through the full kernel (2).
  // In this no-recovery sweep a node leaves Healthy exactly once, so one
  // episode reduces to its first-failure step (horizon + 1 = never failed).
  const int horizon = 100;
  const int episodes = bench::scaled(2000, 20000);
  std::vector<int> failed_by(static_cast<std::size_t>(horizon) + 1, 0);
  {
    pomdp::NodeParams params = bench::paper_node_params(0.1);
    params.p_update = 0.0;  // Fig. 5 hyperparameters: pU = 0
    const pomdp::NodeModel model(params);
    Rng rng(1);
    const std::uint64_t base = rng.engine()();
    const util::ParallelRunner runner(threads);
    const auto first_failure = runner.map<int>(episodes, [&](std::int64_t e) {
      Rng episode_rng = Rng::stream(base, static_cast<std::uint64_t>(e));
      pomdp::NodeState s = pomdp::NodeState::Healthy;
      for (int t = 1; t <= horizon; ++t) {
        const double u = episode_rng.uniform();
        const double to_crash = model.transition(
            s, pomdp::NodeAction::Wait, pomdp::NodeState::Crashed);
        const double to_healthy = model.transition(
            s, pomdp::NodeAction::Wait, pomdp::NodeState::Healthy);
        if (u < to_crash) {
          return t;
        } else if (u >= to_crash + to_healthy) {
          return t;
        }
      }
      return horizon + 1;
    });
    for (const int t_fail : first_failure) {
      for (int t = t_fail; t <= horizon; ++t) {
        ++failed_by[static_cast<std::size_t>(t)];
      }
    }
  }

  for (int t = 10; t <= horizon; t += 10) {
    std::vector<std::string> row{std::to_string(t)};
    for (double pa : p_attacks) {
      const double p_fail = 1.0 - (1.0 - pa) * (1.0 - 1e-5);
      row.push_back(
          ConsoleTable::num(stats::GeometricDist(p_fail).cdf(t), 4));
    }
    row.push_back(ConsoleTable::num(
        static_cast<double>(failed_by[static_cast<std::size_t>(t)]) /
            episodes, 4));
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: curves rise with t; higher pA rises"
               " faster (geometric failure time).\n";
  return 0;
}
