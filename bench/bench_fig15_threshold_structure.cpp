// Fig. 15: (a) threshold structure of the optimal recovery strategy and
// (b) the thresholds alpha*_t as a function of t within a DeltaR = 100
// recovery cycle — non-decreasing, as proved in Corollary 1.
#include <iostream>

#include "bench_common.hpp"
#include "tolerance/solvers/incremental_pruning.hpp"

int main() {
  using namespace tolerance;
  bench::header("Fig. 15 — threshold structure and Cor. 1 monotonicity",
                "Fig. 15");
  const pomdp::NodeModel model(bench::paper_node_params(0.01));
  const auto obs = bench::paper_observation_model();
  const int delta_r = 100;
  // The dominant cost is this DP solve, which is inherently sequential
  // across the cycle; the threshold extraction below is microseconds, so
  // this bench deliberately has no --threads knob.
  const auto result =
      solvers::IncrementalPruning::solve_cycle(model, obs, delta_r);

  ConsoleTable table({"t (cycle position)", "alpha*_t"});
  double prev = 0.0;
  bool monotone = true;
  const std::vector<int> grid{1,  10, 20, 30, 40, 50, 60, 70,
                              80, 90, 95, 96, 97, 98, 99};
  for (int t : grid) {
    const double th = solvers::IncrementalPruning::recovery_threshold(
        result.value_functions[static_cast<std::size_t>(t - 1)]);
    table.add_row({std::to_string(t), ConsoleTable::num(th, 4)});
    // Tolerance absorbs the bounded-error pruning noise (~1e-4).
    if (th + 1e-3 < prev) monotone = false;
    prev = th;
  }
  table.print(std::cout);
  std::cout << "\nthresholds non-decreasing in t (Cor. 1): "
            << (monotone ? "YES" : "NO") << '\n'
            << "Expected shape: alpha*_t rises towards 1 as the forced "
               "periodic recovery approaches\n(recovering voluntarily just "
               "before a scheduled recovery wastes a recovery).\n";
  return 0;
}
