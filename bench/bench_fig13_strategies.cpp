// Fig. 13: the learned strategies for DeltaR = inf, N1 = 6, f = 1 —
// (a) the replication strategy pi(a=1 | s) from Algorithm 2 and
// (b) the recovery threshold alpha* from the node POMDP.
#include <iostream>

#include "bench_common.hpp"
#include "tolerance/solvers/cmdp_lp.hpp"
#include "tolerance/solvers/incremental_pruning.hpp"
#include "tolerance/solvers/objective.hpp"

int main(int argc, char** argv) {
  using namespace tolerance;
  bench::header("Fig. 13 — learned replication and recovery strategies",
                "Fig. 13");
  const int threads = bench::parse_threads(argc, argv);
  bench::print_threads(threads);

  // (a) Replication strategy over s = 0..13 (smax = 13, f = 1, eps_A = 0.9).
  // Weak local recovery (q_recover = 0.02, e.g. frequent crashes eating the
  // pool) makes additions genuinely necessary — the Fig. 13a regime, where
  // "the benefit of adaptive replication is mainly prominent when node
  // crashes are frequent" (§VIII-D finding iii).
  const auto cmdp = pomdp::SystemCmdp::parametric(13, 1, 0.9, 0.88, 0.02);
  const auto sol = solvers::solve_replication_lp(cmdp);
  std::cout << "(a) replication strategy pi(a=1|s), thresholds beta1="
            << sol.beta1 << " beta2=" << sol.beta2 << " kappa="
            << ConsoleTable::num(sol.kappa, 2) << ":\n";
  ConsoleTable rep({"s", "pi(add|s)"});
  for (int s = 0; s <= 13; ++s) {
    rep.add_row({std::to_string(s),
                 ConsoleTable::num(
                     sol.add_probability[static_cast<std::size_t>(s)], 3)});
  }
  rep.print(std::cout);

  // (b) Recovery threshold for DeltaR = inf via exact DP and via Alg. 1.
  const pomdp::NodeModel model(bench::paper_node_params(0.1));
  const auto obs = bench::paper_observation_model();
  const auto ip =
      solvers::IncrementalPruning::solve_discounted(model, obs, 0.99, 1e-7,
                                                    10000);
  const double alpha_ip =
      solvers::IncrementalPruning::recovery_threshold(ip.value_functions[0]);
  // Grid-search the Monte-Carlo objective as a cross-check (Alg. 1 route).
  // The grid points are independent evaluations (common random numbers per
  // point), so the sweep shards across the ParallelRunner; the argmin is
  // taken over the index-ordered results, making it thread-count invariant.
  solvers::RecoveryObjective::Options opts;
  opts.episodes = bench::scaled(100, 400);
  opts.horizon = 200;
  opts.threads = 1;  // the alpha sweep owns the parallelism
  const solvers::RecoveryObjective objective(model, obs, solvers::kNoBtr, opts);
  std::vector<double> alphas;
  for (double a = 0.05; a <= 0.95; a += 0.05) alphas.push_back(a);
  const util::ParallelRunner runner(threads);
  const auto costs = runner.map<double>(
      static_cast<std::int64_t>(alphas.size()), [&](std::int64_t i) {
        return objective({alphas[static_cast<std::size_t>(i)]});
      });
  double best_alpha = 0.0, best_cost = 1e18;
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    if (costs[i] < best_cost) {
      best_cost = costs[i];
      best_alpha = alphas[i];
    }
  }
  std::cout << "\n(b) recovery threshold alpha*:\n"
            << "    exact DP (IP, discounted):      "
            << ConsoleTable::num(alpha_ip, 3) << '\n'
            << "    Alg. 1 grid search (MC):        "
            << ConsoleTable::num(best_alpha, 3) << "  (cost "
            << ConsoleTable::num(best_cost, 3) << ")\n"
            << "\nExpected shape: pi(add|s) = 1 below a threshold state, 0 "
               "above, with at most one\nrandomized state (Thm. 2); alpha* "
               "a fixed belief threshold (paper: ~0.76).\n";
  return 0;
}
