// Fig. 10: average throughput of the MinBFT implementation versus the number
// of replicas N — plus the batching × cluster-size sweep that takes the
// consensus layer past the paper's n = 10 wall.
//
// CPU costs model RSA-1024 on the paper's (2009-era Opteron) hardware:
// sign ~5 ms, verify ~0.2 ms, ~1 ms marshalling+MAC per outgoing message,
// ~0.1 ms per-client session MAC on replies.  The shape that matters:
// unbatched throughput decreases with N (O(N^2) messages, one USIG sign and
// verify per message); binding a whole request batch to one USIG counter
// amortizes the per-batch work and flattens the curve.
//
// Two extra lanes share this binary: --runtime (wall-clock AsyncRuntime
// sweep, BENCH_runtime.json) and --overload (admission-control valve vs
// flood scenarios, BENCH_overload.json, gated on admitted-request
// availability and bounded queue depth).
//
// Emits BENCH_consensus.json and exits non-zero unless
//  * batched and unbatched clusters commit identical operation logs at every
//    swept cluster size (same per-client order, same multiset), and
//  * the n = 7 batched/unbatched speedup clears --min-speedup (default 5), and
//  * the n = 7 batched throughput clears --min-n7 (default 0; CI pins the
//    recorded baseline so regressions fail the bench job).
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "tolerance/consensus/minbft_cluster.hpp"
#include "tolerance/consensus/minbft_runtime.hpp"
#include "tolerance/consensus/minbft_workload.hpp"
#include "tolerance/emulation/scenario_runner.hpp"
#include "tolerance/emulation/scenarios.hpp"
#include "tolerance/net/profiles.hpp"
#include "tolerance/util/stopwatch.hpp"

namespace {

using namespace tolerance;

consensus::MinBftConfig paper_config(int n) {
  consensus::MinBftConfig cfg;
  cfg.f = (n - 1) / 2;
  cfg.checkpoint_period = 100;     // cp, Table 8
  cfg.log_watermark = 1000;        // L, Table 8
  cfg.view_change_timeout = 280.0; // Tvc, Table 8
  cfg.request_retry_timeout = 30.0; // Texec, Table 8
  cfg.crypto_cost_sign = 5e-3;
  cfg.crypto_cost_verify = 2e-4;
  cfg.cpu_cost_per_send = 1e-3;
  cfg.crypto_cost_reply = 1e-4;  // per-client session MAC
  return cfg;
}

net::LinkConfig paper_link() {
  net::LinkConfig link;
  link.base_delay = 1e-3;
  link.jitter = 2e-4;
  link.loss = 5e-4;  // NETEM 0.05% (§VII-A)
  return link;
}

struct ThroughputSample {
  double req_per_s = 0.0;
  double avg_batch = 0.0;
  std::uint64_t usig_cache_hits = 0;
};

ThroughputSample measure_throughput(const consensus::MinBftConfig& cfg,
                                    int n, int clients, double duration_s,
                                    net::LinkConfig link) {
  consensus::MinBftCluster cluster(n, cfg, 77, link);

  long completed = 0;
  std::vector<consensus::MinBftClient*> cs;
  for (int c = 0; c < clients; ++c) cs.push_back(&cluster.add_client());
  // Closed loop: each client immediately re-submits on completion.
  std::function<void(consensus::MinBftClient*)> pump =
      [&](consensus::MinBftClient* client) {
        client->submit("write", [&, client](std::uint64_t, const std::string&,
                                            double) {
          ++completed;
          if (cluster.network().now() < duration_s) pump(client);
        });
      };
  for (auto* client : cs) pump(client);
  cluster.network().run_until(duration_s);

  ThroughputSample sample;
  sample.req_per_s = static_cast<double>(completed) / duration_s;
  std::uint64_t batches = 0, requests = 0;
  for (const auto id : cluster.replica_ids()) {
    batches += cluster.replica(id).batches_proposed();
    requests += cluster.replica(id).requests_proposed();
    sample.usig_cache_hits += cluster.replica(id).usig_cache_hits();
  }
  sample.avg_batch =
      batches > 0 ? static_cast<double>(requests) / static_cast<double>(batches)
                  : 0.0;
  return sample;
}

struct SweepRow {
  int n = 0;
  ThroughputSample unbatched;
  ThroughputSample batched;
  bool logs_match = false;
};

// --- wall-clock (--runtime) mode -------------------------------------------

/// Single source for the --runtime defaults (echoed into the JSON config so
/// a bench artifact is self-describing; README points here instead of
/// repeating the numbers).
constexpr int kDefaultRuntimeClients = 2000;
double default_runtime_duration() { return bench::scaled(2.0, 10.0); }
/// Fast-path flush window: MinBFT's consensus messages fan out in bursts
/// (one PREPARE triggers n-1 COMMITs within microseconds), so half a
/// millisecond coalesces a protocol step per destination when the pair is
/// hot, while staying well under the client-visible latency budget.
constexpr double kRuntimeFlushWindow = 0.0005;

/// Protocol timeouts in wall seconds for the async-runtime lane.  The sim
/// lane's modelled crypto costs are irrelevant here: every signature is a
/// real HMAC-SHA256 computed on the replica's own event loop.
consensus::MinBftConfig runtime_config(int n) {
  consensus::MinBftConfig cfg;
  cfg.f = (n - 1) / 2;
  cfg.checkpoint_period = 100;
  cfg.log_watermark = 1000;
  cfg.view_change_timeout = 2.0;
  cfg.request_retry_timeout = 1.0;
  cfg.batch_timeout = 0.005;
  return cfg;
}

/// The fast path: speculative execution + authenticator batching.  The
/// fallback valve (retransmit 100 ms after a speculative quorum opens
/// without closing) keeps one lost reply from costing a full retry timeout.
consensus::MinBftConfig runtime_fast_config(int n) {
  consensus::MinBftConfig cfg = runtime_config(n);
  cfg.speculative = true;
  cfg.spec_fallback_timeout = 0.1;
  cfg.mac_flush_window = kRuntimeFlushWindow;
  return cfg;
}

/// Parse a closed-loop op ("w:<client>:<serial>") emitted by
/// MinBftRuntimeCluster's load driver.
bool parse_runtime_op(const std::string& op, std::uint64_t* client,
                      std::uint64_t* serial) {
  if (op.rfind("w:", 0) != 0) return false;
  const auto second = op.find(':', 2);
  if (second == std::string::npos) return false;
  char* end = nullptr;
  *client = std::strtoull(op.c_str() + 2, &end, 10);
  if (end != op.c_str() + second) return false;
  *serial = std::strtoull(op.c_str() + second + 1, &end, 10);
  return *end == '\0';
}

/// Wall-clock runs are nondeterministic, so instead of comparing logs across
/// runs we check the invariants any correct run must satisfy: the COMMITTED
/// service-log prefixes of all replicas agree (speculative suffixes may
/// legitimately differ mid-view-change when the run is fenced), and within
/// each committed prefix every client's serials are strictly increasing
/// (closed-loop clients submit serially; dedup forbids double-apply).
std::string validate_committed_logs(consensus::MinBftRuntimeCluster& cluster) {
  std::vector<std::vector<std::string>> logs;
  for (int i = 0; i < cluster.replica_count(); ++i) {
    auto& r = cluster.replica(static_cast<consensus::ReplicaId>(i));
    const auto& full = r.service().log();
    const std::size_t committed =
        std::min(r.committed_log_size(), full.size());
    logs.emplace_back(full.begin(),
                      full.begin() + static_cast<std::ptrdiff_t>(committed));
  }
  for (std::size_t a = 0; a < logs.size(); ++a) {
    for (std::size_t b = a + 1; b < logs.size(); ++b) {
      const auto& shorter = logs[a].size() <= logs[b].size() ? logs[a]
                                                             : logs[b];
      const auto& longer = logs[a].size() <= logs[b].size() ? logs[b]
                                                            : logs[a];
      if (!std::equal(shorter.begin(), shorter.end(), longer.begin())) {
        return "committed logs of replicas " + std::to_string(a) + " and " +
               std::to_string(b) + " are not prefixes of each other";
      }
    }
  }
  for (std::size_t i = 0; i < logs.size(); ++i) {
    std::map<std::uint64_t, std::uint64_t> last_serial;
    for (const std::string& op : logs[i]) {
      std::uint64_t client = 0, serial = 0;
      if (!parse_runtime_op(op, &client, &serial)) {
        return "replica " + std::to_string(i) + " log holds malformed op '" +
               op + "'";
      }
      const auto it = last_serial.find(client);
      if (it != last_serial.end() && serial <= it->second) {
        return "replica " + std::to_string(i) + " log violates client " +
               std::to_string(client) + " serial order (" +
               std::to_string(serial) + " after " +
               std::to_string(it->second) + ")";
      }
      last_serial[client] = serial;
    }
  }
  return {};
}

struct RuntimeRow {
  std::string profile;
  int n = 0;
  consensus::RuntimeLoadStats baseline;
  consensus::RuntimeLoadStats fast;
  std::string log_error;  ///< first committed-log invariant violation
};

/// One data point: a fresh thread pool + AsyncRuntime + cluster, driven
/// closed-loop for `duration` wall seconds.
consensus::RuntimeLoadStats measure_runtime(const net::NetworkProfile& profile,
                                            const consensus::MinBftConfig& cfg,
                                            int n, int clients, double duration,
                                            std::string* log_error) {
  consensus::MinBftRuntimeCluster cluster(
      n, cfg, /*seed=*/77u + static_cast<unsigned>(n), profile);
  const auto stats = cluster.run_closed_loop(clients, duration);
  if (log_error != nullptr && log_error->empty()) {
    *log_error = validate_committed_logs(cluster);
  }
  return stats;
}

/// The deterministic half of the fast-path gates: in the sim lane (where the
/// flush window only changes the modelled MAC cost and speculation only
/// changes WHEN replies go out) the committed operation logs must be
/// indistinguishable from the baseline protocol's.
bool check_sim_equivalence(const std::vector<int>& sweep_n) {
  const int gate_clients = 6;
  const int gate_ops = bench::scaled(10, 25);
  bool ok = true;
  for (const int n : sweep_n) {
    const auto base_cfg = paper_config(n);
    auto spec_cfg = base_cfg;
    spec_cfg.speculative = true;
    auto flush_cfg = base_cfg;
    flush_cfg.mac_flush_window = kRuntimeFlushWindow;
    const auto run_base =
        consensus::run_tagged_workload(base_cfg, n, gate_clients, gate_ops, 42);
    const auto run_spec =
        consensus::run_tagged_workload(spec_cfg, n, gate_clients, gate_ops, 42);
    const auto run_flush = consensus::run_tagged_workload(flush_cfg, n,
                                                          gate_clients,
                                                          gate_ops, 42);
    std::string err = !run_base.error.empty()   ? run_base.error
                      : !run_spec.error.empty() ? run_spec.error
                                                : run_flush.error;
    if (err.empty() &&
        !consensus::logs_equivalent(run_base.log, run_spec.log, gate_clients,
                                    &err)) {
      err = "speculative log diverged: " + err;
    }
    if (err.empty() &&
        !consensus::logs_equivalent(run_base.log, run_flush.log, gate_clients,
                                    &err)) {
      err = "mac-batched log diverged: " + err;
    }
    if (!err.empty()) {
      ok = false;
      std::cout << "sim-lane fast-path equivalence FAILED at n=" << n << ": "
                << err << '\n';
    }
  }
  return ok;
}

int run_runtime_mode(const std::string& out_path,
                     const std::vector<std::string>& profile_names,
                     int clients, double duration, double min_fast_gain,
                     double min_wan_gain) {
  using tolerance::ConsoleTable;
  const std::vector<int> sweep_n{3, 7, 13, 21, 31};
  std::cout << "\n--- wall-clock runtime sweep (" << clients
            << " closed-loop clients, " << duration
            << " s wall per cell; baseline vs fast path [speculative + "
            << kRuntimeFlushWindow * 1e3
            << " ms MAC flush]; real HMAC-SHA256 on per-replica event loops) "
            << "---\n\n";

  // Deterministic gates first: they catch a semantic break even when the
  // wall-clock numbers look healthy.
  const bool sim_ok = check_sim_equivalence(sweep_n);

  std::vector<RuntimeRow> rows;
  bool cells_ok = true;
  bool logs_ok = true;
  ConsoleTable table({"profile", "N", "base req/s", "fast req/s", "gain",
                      "spec done", "MAC amort", "fast p50 (ms)", "errors",
                      "logs"});
  for (const std::string& name : profile_names) {
    const auto profile = net::NetworkProfile::by_name(name);
    if (!profile) {
      std::cout << "unknown profile: " << name << '\n';
      return 1;
    }
    for (const int n : sweep_n) {
      RuntimeRow row;
      row.profile = profile->name;
      row.n = n;
      row.baseline = measure_runtime(*profile, runtime_config(n), n, clients,
                                     duration, &row.log_error);
      row.fast = measure_runtime(*profile, runtime_fast_config(n), n, clients,
                                 duration, &row.log_error);
      // Machine-independent cell gates: progress was made and the transport
      // never saw a malformed frame, a throwing handler, or a bad bundle tag.
      const std::uint64_t errors =
          row.baseline.decode_errors + row.baseline.handler_errors +
          row.baseline.auth_failures + row.fast.decode_errors +
          row.fast.handler_errors + row.fast.auth_failures;
      if (row.baseline.completed == 0 || row.fast.completed == 0 ||
          errors != 0) {
        cells_ok = false;
      }
      if (!row.log_error.empty()) {
        logs_ok = false;
        std::cout << "committed-log invariant FAILED (" << row.profile
                  << ", n=" << n << "): " << row.log_error << '\n';
      }
      const double gain = row.fast.throughput /
                          std::max(row.baseline.throughput, 1e-9);
      const double amort =
          row.fast.macs_computed > 0
              ? static_cast<double>(row.fast.bundled_frames) /
                    static_cast<double>(row.fast.macs_computed)
              : 0.0;
      table.add_row({row.profile, std::to_string(row.n),
                     ConsoleTable::num(row.baseline.throughput, 1),
                     ConsoleTable::num(row.fast.throughput, 1),
                     ConsoleTable::num(gain, 2),
                     std::to_string(row.fast.completed_speculative),
                     ConsoleTable::num(amort, 1),
                     ConsoleTable::num(row.fast.p50_latency * 1e3, 2),
                     std::to_string(errors),
                     row.log_error.empty() ? "valid" : "INVALID"});
      rows.push_back(std::move(row));
    }
  }
  table.print(std::cout);

  // The wall-clock throughput gates, placed where the physics puts the win:
  //  * WAN n=7 — the improvement claim.  Speculation saves the commit round
  //    trip, which on inter-region links is the dominant latency term; the
  //    fast path beats the baseline by 1.1-1.45x run after run.
  //  * LAN n=7 — a regression guard, not an improvement claim.  On a sub-ms
  //    LAN the commit phase overlaps the reply path almost entirely, so the
  //    fast path can only track the baseline (within scheduler noise); the
  //    floor catches the failure modes that DO cost real throughput here
  //    (retransmit storms, relay amplification, reply-cache re-signing).
  // A single 1 s closed-loop window has a fat tail (scheduler noise on a
  // shared box easily moves one cell ±20%), so each gated cell is re-paired
  // twice more and the gate reads the MEDIAN of three paired gains.
  const auto median_gain = [&](const std::string& profile_name,
                               double first_gain) {
    std::vector<double> gains{first_gain};
    const auto profile = net::NetworkProfile::by_name(profile_name);
    for (int rep = 0; profile && rep < 2; ++rep) {
      const auto base = measure_runtime(*profile, runtime_config(7), 7,
                                        clients, duration, nullptr);
      const auto fast = measure_runtime(*profile, runtime_fast_config(7), 7,
                                        clients, duration, nullptr);
      gains.push_back(fast.throughput / std::max(base.throughput, 1e-9));
    }
    std::sort(gains.begin(), gains.end());
    return gains[gains.size() / 2];
  };
  double lan7_gain = 0.0, wan7_gain = 0.0;
  bool have_lan7 = false, have_wan7 = false;
  for (const RuntimeRow& row : rows) {
    const double gain =
        row.fast.throughput / std::max(row.baseline.throughput, 1e-9);
    if (row.profile == "LAN" && row.n == 7) {
      lan7_gain = median_gain("LAN", gain);
      have_lan7 = true;
    }
    if (row.profile == "WAN" && row.n == 7) {
      wan7_gain = median_gain("WAN", gain);
      have_wan7 = true;
    }
  }
  const bool gain_ok = !have_lan7 || lan7_gain >= min_fast_gain;
  const bool wan_gain_ok = !have_wan7 || wan7_gain >= min_wan_gain;

  std::cout << "\ngates:\n"
            << "  every cell completed, zero decode/handler/auth errors: "
            << (cells_ok ? "OK" : "FAILED") << '\n'
            << "  committed-log prefix agreement + client serial order: "
            << (logs_ok ? "OK" : "FAILED") << '\n'
            << "  sim-lane speculative/batched logs == baseline logs: "
            << (sim_ok ? "OK" : "FAILED") << '\n';
  if (have_wan7) {
    std::cout << "  WAN n=7 fast/baseline throughput gain: "
              << ConsoleTable::num(wan7_gain, 2) << " (floor " << min_wan_gain
              << ") " << (wan_gain_ok ? "OK" : "REGRESSION") << '\n';
  }
  if (have_lan7) {
    std::cout << "  LAN n=7 fast/baseline regression guard: "
              << ConsoleTable::num(lan7_gain, 2) << " (floor " << min_fast_gain
              << ") " << (gain_ok ? "OK" : "REGRESSION") << '\n';
  }

  const bool ok = cells_ok && logs_ok && sim_ok && gain_ok && wan_gain_ok;
  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"consensus_runtime\",\n"
      << "  \"config\": {\"clients\": " << clients
      << ", \"duration_s\": " << duration
      << ", \"batch_size\": " << runtime_config(3).batch_size
      << ", \"pipeline_depth\": " << runtime_config(3).pipeline_depth
      << ", \"flush_window_s\": " << kRuntimeFlushWindow
      << ", \"min_fast_gain\": " << min_fast_gain
      << ", \"min_wan_gain\": " << min_wan_gain
      << "},\n"
      << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RuntimeRow& row = rows[i];
    const auto cell = [&out](const char* prefix,
                             const consensus::RuntimeLoadStats& s) {
      out << ", \"" << prefix << "_req_s\": " << s.throughput << ", \""
          << prefix << "_completed\": " << s.completed << ", \"" << prefix
          << "_p50_latency_s\": " << s.p50_latency << ", \"" << prefix
          << "_p99_latency_s\": " << s.p99_latency << ", \"" << prefix
          << "_dropped\": " << s.dropped << ", \"" << prefix
          << "_overflow_dropped\": " << s.overflow_dropped << ", \"" << prefix
          << "_decode_errors\": " << s.decode_errors << ", \"" << prefix
          << "_handler_errors\": " << s.handler_errors << ", \"" << prefix
          << "_auth_failures\": " << s.auth_failures;
    };
    out << "    {\"profile\": \"" << row.profile << "\", \"n\": " << row.n;
    cell("baseline", row.baseline);
    cell("fast", row.fast);
    out << ", \"fast_gain\": "
        << row.fast.throughput / std::max(row.baseline.throughput, 1e-9)
        << ", \"spec_completed\": " << row.fast.completed_speculative
        << ", \"spec_executions\": " << row.fast.spec_executions
        << ", \"spec_rollbacks\": " << row.fast.spec_rollbacks
        << ", \"macs_computed\": " << row.fast.macs_computed
        << ", \"bundled_frames\": " << row.fast.bundled_frames
        << ", \"logs_valid\": " << (row.log_error.empty() ? "true" : "false")
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"gates\": {\"cells_ok\": " << (cells_ok ? "true" : "false")
      << ", \"logs_ok\": " << (logs_ok ? "true" : "false")
      << ", \"sim_equivalence_ok\": " << (sim_ok ? "true" : "false")
      << ", \"lan7_gain\": " << lan7_gain
      << ", \"gain_ok\": " << (gain_ok ? "true" : "false")
      << ", \"wan7_gain\": " << wan7_gain
      << ", \"wan_gain_ok\": " << (wan_gain_ok ? "true" : "false")
      << ", \"ok\": " << (ok ? "true" : "false") << "}\n"
      << "}\n";
  std::cout << "wrote " << out_path << '\n';
  return ok ? 0 : 1;
}

// --- overload (--overload) mode --------------------------------------------

struct OverloadRow {
  std::string label;
  bool valve = false;
  emulation::ScenarioResult result;
  double seconds = 0.0;
};

/// One overload cell: a flood scenario episode with the admission valve on
/// or off.  Scenarios come from the shared catalog so the bench, the ctest
/// battery, and the golden calibration all exercise identical workloads.
OverloadRow run_overload_cell(emulation::Scenario s, const std::string& label,
                              bool valve) {
  OverloadRow row;
  row.label = label;
  row.valve = valve;
  s.admission_control = valve;
  Stopwatch clock;
  row.result = emulation::make_scenario_runner(s, 42).run(7);
  row.seconds = clock.elapsed_seconds();
  return row;
}

/// The admission-control sweep: spike multipliers (10x within capacity,
/// 100x far past it), a retry storm, and a slow-loris flood, each with the
/// valve on and off.  CI gates:
///  * valve on  -> admitted-request availability >= 0.95 and the sampled
///    per-replica queue depth (backlog + transport inbox) <= --max-queue;
///  * valve on at 10x -> the valve is TRANSPARENT when capacity suffices
///    (it must not shed a load the cluster can serve);
///  * valve off at 100x -> the baseline still demonstrably violates both
///    bounds; if it stops melting, the scenario no longer proves anything
///    and the calibration must be redone.
int run_overload_mode(const std::string& out_path, int max_queue) {
  using tolerance::ConsoleTable;
  std::cout << "\n--- overload sweep (flood scenarios from the shared "
               "catalog; valve on vs off; seed 42, episode 7) ---\n\n";

  emulation::Scenario spike100 = emulation::find_scenario("load-spike-100x");
  emulation::Scenario spike10 = spike100;
  spike10.name = "load-spike-10x";
  // Same 20 flood clients, a tenth of the per-cycle request volume: ~50
  // requests per cycle against a ~200-per-cycle serving capacity.
  for (auto& e : spike10.events) e.magnitude = spike100.events[0].magnitude / 10.0;

  std::vector<OverloadRow> rows;
  for (const bool valve : {true, false}) {
    rows.push_back(run_overload_cell(spike10, "load-spike-10x", valve));
    rows.push_back(run_overload_cell(spike100, "load-spike-100x", valve));
    rows.push_back(run_overload_cell(
        emulation::find_scenario("retry-storm"), "retry-storm", valve));
    rows.push_back(run_overload_cell(
        emulation::find_scenario("slow-loris-flood"), "slow-loris-flood",
        valve));
  }

  ConsoleTable table({"scenario", "valve", "adm(A)", "svc(A)", "qmax",
                      "submitted", "completed", "rejected", "backoffs",
                      "views", "seconds"});
  bool on_ok = true, transparent_ok = true, baseline_violates = false;
  for (const OverloadRow& row : rows) {
    const auto& r = row.result;
    table.add_row({row.label, row.valve ? "on" : "off",
                   ConsoleTable::num(r.admitted_availability, 3),
                   ConsoleTable::num(r.service_availability, 3),
                   std::to_string(r.max_queue_depth),
                   std::to_string(r.flood_submitted),
                   std::to_string(r.flood_completed),
                   std::to_string(r.flood_rejections),
                   std::to_string(r.flood_backoffs),
                   std::to_string(r.final_view),
                   ConsoleTable::num(row.seconds, 2)});
    if (row.valve) {
      if (r.admitted_availability < 0.95 || r.max_queue_depth > max_queue) {
        on_ok = false;
      }
      if (row.label == "load-spike-10x" &&
          (r.flood_rejections > r.flood_submitted / 10 ||
           r.flood_completed < r.flood_submitted * 9 / 10)) {
        transparent_ok = false;
      }
    } else if (row.label == "load-spike-100x") {
      baseline_violates =
          r.admitted_availability < 0.6 && r.max_queue_depth > 100000;
    }
  }
  table.print(std::cout);

  const bool ok = on_ok && transparent_ok && baseline_violates;
  std::cout << "\ngates:\n"
            << "  valve on: adm >= 0.95 and qmax <= " << max_queue << ": "
            << (on_ok ? "OK" : "FAILED") << '\n'
            << "  valve transparent at 10x (no shedding within capacity): "
            << (transparent_ok ? "OK" : "FAILED") << '\n'
            << "  valve off at 100x still melts (adm < 0.6, qmax > 100000): "
            << (baseline_violates ? "OK" : "FAILED — recalibrate the flood")
            << '\n';

  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"consensus_overload\",\n  \"config\": "
      << "{\"seed\": 42, \"episode\": 7, \"max_queue\": " << max_queue
      << "},\n  \"sweep\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i].result;
    out << "    {\"scenario\": \"" << rows[i].label << "\", \"valve\": "
        << (rows[i].valve ? "true" : "false")
        << ", \"admitted_availability\": " << r.admitted_availability
        << ", \"service_availability\": " << r.service_availability
        << ", \"max_queue_depth\": " << r.max_queue_depth
        << ", \"flood_submitted\": " << r.flood_submitted
        << ", \"flood_completed\": " << r.flood_completed
        << ", \"flood_rejections\": " << r.flood_rejections
        << ", \"flood_backoffs\": " << r.flood_backoffs
        << ", \"final_view\": " << r.final_view
        << ", \"seconds\": " << rows[i].seconds << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"gates\": {\"valve_on_ok\": " << (on_ok ? "true" : "false")
      << ", \"transparent_at_10x\": " << (transparent_ok ? "true" : "false")
      << ", \"baseline_violates\": " << (baseline_violates ? "true" : "false")
      << ", \"ok\": " << (ok ? "true" : "false") << "}\n}\n";
  std::cout << "wrote " << out_path << '\n';
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tolerance;
  bench::header("Fig. 10 — MinBFT throughput vs cluster size, batched vs not",
                "Fig. 10 + the batching scale-up sweep");
  std::string out_path = "BENCH_consensus.json";
  double min_speedup = 5.0;
  double min_n7 = 0.0;
  bool runtime_mode = false;
  bool overload_mode = false;
  std::string overload_out = "BENCH_overload.json";
  int overload_max_queue = 2048;
  std::string runtime_out = "BENCH_runtime.json";
  int runtime_clients = kDefaultRuntimeClients;
  double runtime_duration = default_runtime_duration();
  double min_fast_gain = 0.75;
  double min_wan_gain = 1.0;
  std::vector<std::string> runtime_profiles{"LAN", "WAN"};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) out_path = argv[i + 1];
    if (arg == "--min-speedup" && i + 1 < argc)
      min_speedup = std::atof(argv[i + 1]);
    if (arg == "--min-n7" && i + 1 < argc) min_n7 = std::atof(argv[i + 1]);
    if (arg == "--runtime") runtime_mode = true;
    if (arg == "--overload") overload_mode = true;
    if (arg == "--overload-out" && i + 1 < argc) overload_out = argv[i + 1];
    if (arg == "--max-queue" && i + 1 < argc)
      overload_max_queue = std::atoi(argv[i + 1]);
    if (arg == "--runtime-out" && i + 1 < argc) runtime_out = argv[i + 1];
    if (arg == "--runtime-clients" && i + 1 < argc)
      runtime_clients = std::atoi(argv[i + 1]);
    if (arg == "--runtime-duration" && i + 1 < argc)
      runtime_duration = std::atof(argv[i + 1]);
    if (arg == "--min-fast-gain" && i + 1 < argc)
      min_fast_gain = std::atof(argv[i + 1]);
    if (arg == "--min-wan-gain" && i + 1 < argc)
      min_wan_gain = std::atof(argv[i + 1]);
    if (arg == "--profiles" && i + 1 < argc) {
      runtime_profiles.clear();
      std::stringstream ss(argv[i + 1]);
      std::string name;
      while (std::getline(ss, name, ',')) {
        if (!name.empty()) runtime_profiles.push_back(name);
      }
    }
  }

  // Wall-clock lane: real threads, real crypto, wire-serialized messages.
  // Entirely separate from the deterministic sweep below (and from its
  // BENCH_consensus.json gates, which stay sim-lane only).
  if (runtime_mode) {
    return run_runtime_mode(runtime_out, runtime_profiles, runtime_clients,
                            runtime_duration, min_fast_gain, min_wan_gain);
  }

  // Overload lane: the admission-control valve under flood scenarios,
  // sim-lane deterministic, with its own artifact and gates.
  if (overload_mode) {
    return run_overload_mode(overload_out, overload_max_queue);
  }

  // --- The paper's figure: unbatched protocol, 1 vs 20 clients -------------
  const double duration = bench::scaled(5.0, 60.0);
  ConsoleTable table({"N", "1 client (req/s)", "20 clients (req/s)"});
  for (int n = 3; n <= 10; ++n) {
    const auto cfg = paper_config(n).unbatched();
    const double one =
        measure_throughput(cfg, n, 1, duration, paper_link()).req_per_s;
    const double twenty =
        measure_throughput(cfg, n, 20, duration, paper_link()).req_per_s;
    table.add_row({std::to_string(n), ConsoleTable::num(one, 1),
                   ConsoleTable::num(twenty, 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (Fig. 10): both curves decrease with N; the "
               "20-client curve sits above the 1-client curve (pipelining "
               "hides latency until the leader's CPU saturates).\n";

  // --- Batching sweep: n up to 31, batched vs unbatched --------------------
  const std::vector<int> sweep_n{3, 7, 13, 21, 31};
  const int sweep_clients = 40;  // enough closed-loop load to fill batches
  const double sweep_duration = bench::scaled(3.0, 15.0);
  const int gate_clients = 8;
  const int gate_ops = bench::scaled(15, 40);

  const consensus::MinBftConfig sweep_cfg = paper_config(3);
  std::cout << "\n--- batching sweep (" << sweep_clients
            << " closed-loop clients, " << sweep_duration << " s simulated; "
            << "batch_size=" << sweep_cfg.batch_size
            << ", pipeline_depth=" << sweep_cfg.pipeline_depth
            << " vs the unbatched protocol; "
            << "log-equivalence gate: " << gate_clients << " clients x "
            << gate_ops << " ops) ---\n\n";

  std::vector<SweepRow> rows;
  bool logs_ok = true;
  ConsoleTable sweep({"N", "unbatched (req/s)", "batched (req/s)", "speedup",
                      "avg batch", "UI cache hits", "logs"});
  for (const int n : sweep_n) {
    SweepRow row;
    row.n = n;
    const auto batched_cfg = paper_config(n);
    const auto unbatched_cfg = batched_cfg.unbatched();
    row.unbatched = measure_throughput(unbatched_cfg, n, sweep_clients,
                                       sweep_duration, paper_link());
    row.batched = measure_throughput(batched_cfg, n, sweep_clients,
                                     sweep_duration, paper_link());
    // The workload driver and equivalence definition are shared with the
    // MinBftBatching unit tests (minbft_workload.hpp).
    const auto run_u = consensus::run_tagged_workload(unbatched_cfg, n,
                                                      gate_clients, gate_ops,
                                                      42);
    const auto run_b = consensus::run_tagged_workload(batched_cfg, n,
                                                      gate_clients, gate_ops,
                                                      42);
    std::string err = !run_u.error.empty() ? run_u.error : run_b.error;
    row.logs_match = err.empty() &&
                     consensus::logs_equivalent(run_u.log, run_b.log,
                                                gate_clients, &err);
    if (!row.logs_match) {
      logs_ok = false;
      std::cout << "log equivalence FAILED at n=" << n << ": " << err << '\n';
    }
    rows.push_back(row);
    const double speedup =
        row.batched.req_per_s / std::max(row.unbatched.req_per_s, 1e-9);
    sweep.add_row({std::to_string(n),
                   ConsoleTable::num(row.unbatched.req_per_s, 1),
                   ConsoleTable::num(row.batched.req_per_s, 1),
                   ConsoleTable::num(speedup, 2),
                   ConsoleTable::num(row.batched.avg_batch, 1),
                   std::to_string(row.batched.usig_cache_hits),
                   row.logs_match ? "match" : "DIVERGED"});
  }
  sweep.print(std::cout);

  double n7_speedup = 0.0, n7_batched = 0.0;
  for (const SweepRow& row : rows) {
    if (row.n == 7) {
      n7_speedup =
          row.batched.req_per_s / std::max(row.unbatched.req_per_s, 1e-9);
      n7_batched = row.batched.req_per_s;
    }
  }
  const bool speedup_ok = n7_speedup >= min_speedup;
  const bool n7_ok = n7_batched >= min_n7;
  const auto memo = consensus::digest_memo_stats();

  std::cout << "\nn=7 batched/unbatched speedup: "
            << ConsoleTable::num(n7_speedup, 2) << " (floor " << min_speedup
            << ") " << (speedup_ok ? "OK" : "REGRESSION") << '\n'
            << "n=7 batched throughput: " << ConsoleTable::num(n7_batched, 1)
            << " req/s (floor " << min_n7 << ") "
            << (n7_ok ? "OK" : "REGRESSION") << '\n'
            << "operation logs batched vs unbatched: "
            << (logs_ok ? "identical" : "DIVERGED — BUG") << '\n'
            << "message digests: " << memo.computed << " computed, "
            << memo.saved << " served from the memo (saved SHA-256 runs)\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"consensus_batching\",\n"
      << "  \"config\": {\n"
      << "    \"crypto_cost_sign\": " << sweep_cfg.crypto_cost_sign << ",\n"
      << "    \"crypto_cost_verify\": " << sweep_cfg.crypto_cost_verify
      << ",\n"
      << "    \"cpu_cost_per_send\": " << sweep_cfg.cpu_cost_per_send << ",\n"
      << "    \"crypto_cost_reply\": " << sweep_cfg.crypto_cost_reply << ",\n"
      << "    \"batch_size\": " << sweep_cfg.batch_size << ",\n"
      << "    \"pipeline_depth\": " << sweep_cfg.pipeline_depth << ",\n"
      << "    \"clients\": " << sweep_clients << ",\n"
      << "    \"duration_s\": " << sweep_duration << "\n"
      << "  },\n"
      << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    const double speedup =
        row.batched.req_per_s / std::max(row.unbatched.req_per_s, 1e-9);
    out << "    {\"n\": " << row.n
        << ", \"unbatched_req_s\": " << row.unbatched.req_per_s
        << ", \"batched_req_s\": " << row.batched.req_per_s
        << ", \"speedup\": " << speedup
        << ", \"avg_batch\": " << row.batched.avg_batch
        << ", \"usig_cache_hits\": " << row.batched.usig_cache_hits
        << ", \"logs_match\": " << (row.logs_match ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"n7\": {\"speedup\": " << n7_speedup
      << ", \"batched_req_s\": " << n7_batched
      << ", \"min_speedup\": " << min_speedup << ", \"min_req_s\": " << min_n7
      << "},\n"
      << "  \"digest_memo\": {\"computed\": " << memo.computed
      << ", \"saved\": " << memo.saved << "},\n"
      << "  \"gates\": {\"logs_match\": " << (logs_ok ? "true" : "false")
      << ", \"speedup_ok\": " << (speedup_ok ? "true" : "false")
      << ", \"n7_throughput_ok\": " << (n7_ok ? "true" : "false") << "}\n"
      << "}\n";
  std::cout << "wrote " << out_path << '\n';
  return logs_ok && speedup_ok && n7_ok ? 0 : 1;
}
