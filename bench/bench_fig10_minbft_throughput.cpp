// Fig. 10: average throughput of the MinBFT implementation versus the number
// of replicas N — plus the batching × cluster-size sweep that takes the
// consensus layer past the paper's n = 10 wall.
//
// CPU costs model RSA-1024 on the paper's (2009-era Opteron) hardware:
// sign ~5 ms, verify ~0.2 ms, ~1 ms marshalling+MAC per outgoing message,
// ~0.1 ms per-client session MAC on replies.  The shape that matters:
// unbatched throughput decreases with N (O(N^2) messages, one USIG sign and
// verify per message); binding a whole request batch to one USIG counter
// amortizes the per-batch work and flattens the curve.
//
// Emits BENCH_consensus.json and exits non-zero unless
//  * batched and unbatched clusters commit identical operation logs at every
//    swept cluster size (same per-client order, same multiset), and
//  * the n = 7 batched/unbatched speedup clears --min-speedup (default 5), and
//  * the n = 7 batched throughput clears --min-n7 (default 0; CI pins the
//    recorded baseline so regressions fail the bench job).
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "tolerance/consensus/minbft_cluster.hpp"
#include "tolerance/consensus/minbft_runtime.hpp"
#include "tolerance/consensus/minbft_workload.hpp"
#include "tolerance/net/profiles.hpp"

namespace {

using namespace tolerance;

consensus::MinBftConfig paper_config(int n) {
  consensus::MinBftConfig cfg;
  cfg.f = (n - 1) / 2;
  cfg.checkpoint_period = 100;     // cp, Table 8
  cfg.log_watermark = 1000;        // L, Table 8
  cfg.view_change_timeout = 280.0; // Tvc, Table 8
  cfg.request_retry_timeout = 30.0; // Texec, Table 8
  cfg.crypto_cost_sign = 5e-3;
  cfg.crypto_cost_verify = 2e-4;
  cfg.cpu_cost_per_send = 1e-3;
  cfg.crypto_cost_reply = 1e-4;  // per-client session MAC
  return cfg;
}

net::LinkConfig paper_link() {
  net::LinkConfig link;
  link.base_delay = 1e-3;
  link.jitter = 2e-4;
  link.loss = 5e-4;  // NETEM 0.05% (§VII-A)
  return link;
}

struct ThroughputSample {
  double req_per_s = 0.0;
  double avg_batch = 0.0;
  std::uint64_t usig_cache_hits = 0;
};

ThroughputSample measure_throughput(const consensus::MinBftConfig& cfg,
                                    int n, int clients, double duration_s,
                                    net::LinkConfig link) {
  consensus::MinBftCluster cluster(n, cfg, 77, link);

  long completed = 0;
  std::vector<consensus::MinBftClient*> cs;
  for (int c = 0; c < clients; ++c) cs.push_back(&cluster.add_client());
  // Closed loop: each client immediately re-submits on completion.
  std::function<void(consensus::MinBftClient*)> pump =
      [&](consensus::MinBftClient* client) {
        client->submit("write", [&, client](std::uint64_t, const std::string&,
                                            double) {
          ++completed;
          if (cluster.network().now() < duration_s) pump(client);
        });
      };
  for (auto* client : cs) pump(client);
  cluster.network().run_until(duration_s);

  ThroughputSample sample;
  sample.req_per_s = static_cast<double>(completed) / duration_s;
  std::uint64_t batches = 0, requests = 0;
  for (const auto id : cluster.replica_ids()) {
    batches += cluster.replica(id).batches_proposed();
    requests += cluster.replica(id).requests_proposed();
    sample.usig_cache_hits += cluster.replica(id).usig_cache_hits();
  }
  sample.avg_batch =
      batches > 0 ? static_cast<double>(requests) / static_cast<double>(batches)
                  : 0.0;
  return sample;
}

struct SweepRow {
  int n = 0;
  ThroughputSample unbatched;
  ThroughputSample batched;
  bool logs_match = false;
};

// --- wall-clock (--runtime) mode -------------------------------------------

/// Protocol timeouts in wall seconds for the async-runtime lane.  The sim
/// lane's modelled crypto costs are irrelevant here: every signature is a
/// real HMAC-SHA256 computed on the replica's own event loop.
consensus::MinBftConfig runtime_config(int n) {
  consensus::MinBftConfig cfg;
  cfg.f = (n - 1) / 2;
  cfg.checkpoint_period = 100;
  cfg.log_watermark = 1000;
  cfg.view_change_timeout = 2.0;
  cfg.request_retry_timeout = 1.0;
  cfg.batch_timeout = 0.005;
  return cfg;
}

struct RuntimeRow {
  std::string profile;
  int n = 0;
  consensus::RuntimeLoadStats stats;
};

/// One data point: a fresh thread pool + AsyncRuntime + cluster, driven
/// closed-loop for `duration` wall seconds.
RuntimeRow measure_runtime(const net::NetworkProfile& profile, int n,
                           int clients, double duration) {
  RuntimeRow row;
  row.profile = profile.name;
  row.n = n;
  consensus::MinBftRuntimeCluster cluster(n, runtime_config(n),
                                          /*seed=*/77u + static_cast<unsigned>(n),
                                          profile);
  row.stats = cluster.run_closed_loop(clients, duration);
  return row;
}

int run_runtime_mode(const std::string& out_path,
                     const std::vector<std::string>& profile_names,
                     int clients, double duration) {
  using tolerance::ConsoleTable;
  const std::vector<int> sweep_n{3, 7, 13, 21, 31};
  std::cout << "\n--- wall-clock runtime sweep (" << clients
            << " closed-loop clients, " << duration
            << " s wall per cell; real HMAC-SHA256 on "
            << "per-replica event loops) ---\n\n";

  std::vector<RuntimeRow> rows;
  bool ok = true;
  ConsoleTable table({"profile", "N", "req/s", "completed", "p50 lat (ms)",
                      "p99 lat (ms)", "net drop", "reorder", "ovfl",
                      "decode err"});
  for (const std::string& name : profile_names) {
    const auto profile = net::NetworkProfile::by_name(name);
    if (!profile) {
      std::cout << "unknown profile: " << name << '\n';
      return 1;
    }
    for (const int n : sweep_n) {
      RuntimeRow row = measure_runtime(*profile, n, clients, duration);
      // Machine-independent gates only: progress was made and the transport
      // never saw a malformed frame or a throwing handler.
      if (row.stats.completed == 0 || row.stats.decode_errors != 0 ||
          row.stats.handler_errors != 0) {
        ok = false;
      }
      table.add_row({row.profile, std::to_string(row.n),
                     ConsoleTable::num(row.stats.throughput, 1),
                     std::to_string(row.stats.completed),
                     ConsoleTable::num(row.stats.p50_latency * 1e3, 2),
                     ConsoleTable::num(row.stats.p99_latency * 1e3, 2),
                     std::to_string(row.stats.dropped),
                     std::to_string(row.stats.reordered),
                     std::to_string(row.stats.overflow_dropped),
                     std::to_string(row.stats.decode_errors)});
      rows.push_back(std::move(row));
    }
  }
  table.print(std::cout);
  std::cout << "\ngates: every cell completed requests, zero decode errors, "
            << "zero handler errors: " << (ok ? "OK" : "FAILED") << '\n';

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"consensus_runtime\",\n"
      << "  \"config\": {\"clients\": " << clients
      << ", \"duration_s\": " << duration
      << ", \"batch_size\": " << runtime_config(3).batch_size
      << ", \"pipeline_depth\": " << runtime_config(3).pipeline_depth
      << "},\n"
      << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RuntimeRow& row = rows[i];
    out << "    {\"profile\": \"" << row.profile << "\", \"n\": " << row.n
        << ", \"req_s\": " << row.stats.throughput
        << ", \"completed\": " << row.stats.completed
        << ", \"elapsed_s\": " << row.stats.elapsed_seconds
        << ", \"mean_latency_s\": " << row.stats.mean_latency
        << ", \"p50_latency_s\": " << row.stats.p50_latency
        << ", \"p99_latency_s\": " << row.stats.p99_latency
        << ", \"dropped\": " << row.stats.dropped
        << ", \"reordered\": " << row.stats.reordered
        << ", \"overflow_dropped\": " << row.stats.overflow_dropped
        << ", \"decode_errors\": " << row.stats.decode_errors
        << ", \"handler_errors\": " << row.stats.handler_errors << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"gates\": {\"ok\": " << (ok ? "true" : "false") << "}\n"
      << "}\n";
  std::cout << "wrote " << out_path << '\n';
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tolerance;
  bench::header("Fig. 10 — MinBFT throughput vs cluster size, batched vs not",
                "Fig. 10 + the batching scale-up sweep");
  std::string out_path = "BENCH_consensus.json";
  double min_speedup = 5.0;
  double min_n7 = 0.0;
  bool runtime_mode = false;
  std::string runtime_out = "BENCH_runtime.json";
  int runtime_clients = 2000;
  double runtime_duration = bench::scaled(2.0, 10.0);
  std::vector<std::string> runtime_profiles{"LAN", "WAN"};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) out_path = argv[i + 1];
    if (arg == "--min-speedup" && i + 1 < argc)
      min_speedup = std::atof(argv[i + 1]);
    if (arg == "--min-n7" && i + 1 < argc) min_n7 = std::atof(argv[i + 1]);
    if (arg == "--runtime") runtime_mode = true;
    if (arg == "--runtime-out" && i + 1 < argc) runtime_out = argv[i + 1];
    if (arg == "--runtime-clients" && i + 1 < argc)
      runtime_clients = std::atoi(argv[i + 1]);
    if (arg == "--runtime-duration" && i + 1 < argc)
      runtime_duration = std::atof(argv[i + 1]);
    if (arg == "--profiles" && i + 1 < argc) {
      runtime_profiles.clear();
      std::stringstream ss(argv[i + 1]);
      std::string name;
      while (std::getline(ss, name, ',')) {
        if (!name.empty()) runtime_profiles.push_back(name);
      }
    }
  }

  // Wall-clock lane: real threads, real crypto, wire-serialized messages.
  // Entirely separate from the deterministic sweep below (and from its
  // BENCH_consensus.json gates, which stay sim-lane only).
  if (runtime_mode) {
    return run_runtime_mode(runtime_out, runtime_profiles, runtime_clients,
                            runtime_duration);
  }

  // --- The paper's figure: unbatched protocol, 1 vs 20 clients -------------
  const double duration = bench::scaled(5.0, 60.0);
  ConsoleTable table({"N", "1 client (req/s)", "20 clients (req/s)"});
  for (int n = 3; n <= 10; ++n) {
    const auto cfg = paper_config(n).unbatched();
    const double one =
        measure_throughput(cfg, n, 1, duration, paper_link()).req_per_s;
    const double twenty =
        measure_throughput(cfg, n, 20, duration, paper_link()).req_per_s;
    table.add_row({std::to_string(n), ConsoleTable::num(one, 1),
                   ConsoleTable::num(twenty, 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (Fig. 10): both curves decrease with N; the "
               "20-client curve sits above the 1-client curve (pipelining "
               "hides latency until the leader's CPU saturates).\n";

  // --- Batching sweep: n up to 31, batched vs unbatched --------------------
  const std::vector<int> sweep_n{3, 7, 13, 21, 31};
  const int sweep_clients = 40;  // enough closed-loop load to fill batches
  const double sweep_duration = bench::scaled(3.0, 15.0);
  const int gate_clients = 8;
  const int gate_ops = bench::scaled(15, 40);

  const consensus::MinBftConfig sweep_cfg = paper_config(3);
  std::cout << "\n--- batching sweep (" << sweep_clients
            << " closed-loop clients, " << sweep_duration << " s simulated; "
            << "batch_size=" << sweep_cfg.batch_size
            << ", pipeline_depth=" << sweep_cfg.pipeline_depth
            << " vs the unbatched protocol; "
            << "log-equivalence gate: " << gate_clients << " clients x "
            << gate_ops << " ops) ---\n\n";

  std::vector<SweepRow> rows;
  bool logs_ok = true;
  ConsoleTable sweep({"N", "unbatched (req/s)", "batched (req/s)", "speedup",
                      "avg batch", "UI cache hits", "logs"});
  for (const int n : sweep_n) {
    SweepRow row;
    row.n = n;
    const auto batched_cfg = paper_config(n);
    const auto unbatched_cfg = batched_cfg.unbatched();
    row.unbatched = measure_throughput(unbatched_cfg, n, sweep_clients,
                                       sweep_duration, paper_link());
    row.batched = measure_throughput(batched_cfg, n, sweep_clients,
                                     sweep_duration, paper_link());
    // The workload driver and equivalence definition are shared with the
    // MinBftBatching unit tests (minbft_workload.hpp).
    const auto run_u = consensus::run_tagged_workload(unbatched_cfg, n,
                                                      gate_clients, gate_ops,
                                                      42);
    const auto run_b = consensus::run_tagged_workload(batched_cfg, n,
                                                      gate_clients, gate_ops,
                                                      42);
    std::string err = !run_u.error.empty() ? run_u.error : run_b.error;
    row.logs_match = err.empty() &&
                     consensus::logs_equivalent(run_u.log, run_b.log,
                                                gate_clients, &err);
    if (!row.logs_match) {
      logs_ok = false;
      std::cout << "log equivalence FAILED at n=" << n << ": " << err << '\n';
    }
    rows.push_back(row);
    const double speedup =
        row.batched.req_per_s / std::max(row.unbatched.req_per_s, 1e-9);
    sweep.add_row({std::to_string(n),
                   ConsoleTable::num(row.unbatched.req_per_s, 1),
                   ConsoleTable::num(row.batched.req_per_s, 1),
                   ConsoleTable::num(speedup, 2),
                   ConsoleTable::num(row.batched.avg_batch, 1),
                   std::to_string(row.batched.usig_cache_hits),
                   row.logs_match ? "match" : "DIVERGED"});
  }
  sweep.print(std::cout);

  double n7_speedup = 0.0, n7_batched = 0.0;
  for (const SweepRow& row : rows) {
    if (row.n == 7) {
      n7_speedup =
          row.batched.req_per_s / std::max(row.unbatched.req_per_s, 1e-9);
      n7_batched = row.batched.req_per_s;
    }
  }
  const bool speedup_ok = n7_speedup >= min_speedup;
  const bool n7_ok = n7_batched >= min_n7;
  const auto memo = consensus::digest_memo_stats();

  std::cout << "\nn=7 batched/unbatched speedup: "
            << ConsoleTable::num(n7_speedup, 2) << " (floor " << min_speedup
            << ") " << (speedup_ok ? "OK" : "REGRESSION") << '\n'
            << "n=7 batched throughput: " << ConsoleTable::num(n7_batched, 1)
            << " req/s (floor " << min_n7 << ") "
            << (n7_ok ? "OK" : "REGRESSION") << '\n'
            << "operation logs batched vs unbatched: "
            << (logs_ok ? "identical" : "DIVERGED — BUG") << '\n'
            << "message digests: " << memo.computed << " computed, "
            << memo.saved << " served from the memo (saved SHA-256 runs)\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"consensus_batching\",\n"
      << "  \"config\": {\n"
      << "    \"crypto_cost_sign\": " << sweep_cfg.crypto_cost_sign << ",\n"
      << "    \"crypto_cost_verify\": " << sweep_cfg.crypto_cost_verify
      << ",\n"
      << "    \"cpu_cost_per_send\": " << sweep_cfg.cpu_cost_per_send << ",\n"
      << "    \"crypto_cost_reply\": " << sweep_cfg.crypto_cost_reply << ",\n"
      << "    \"batch_size\": " << sweep_cfg.batch_size << ",\n"
      << "    \"pipeline_depth\": " << sweep_cfg.pipeline_depth << ",\n"
      << "    \"clients\": " << sweep_clients << ",\n"
      << "    \"duration_s\": " << sweep_duration << "\n"
      << "  },\n"
      << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    const double speedup =
        row.batched.req_per_s / std::max(row.unbatched.req_per_s, 1e-9);
    out << "    {\"n\": " << row.n
        << ", \"unbatched_req_s\": " << row.unbatched.req_per_s
        << ", \"batched_req_s\": " << row.batched.req_per_s
        << ", \"speedup\": " << speedup
        << ", \"avg_batch\": " << row.batched.avg_batch
        << ", \"usig_cache_hits\": " << row.batched.usig_cache_hits
        << ", \"logs_match\": " << (row.logs_match ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"n7\": {\"speedup\": " << n7_speedup
      << ", \"batched_req_s\": " << n7_batched
      << ", \"min_speedup\": " << min_speedup << ", \"min_req_s\": " << min_n7
      << "},\n"
      << "  \"digest_memo\": {\"computed\": " << memo.computed
      << ", \"saved\": " << memo.saved << "},\n"
      << "  \"gates\": {\"logs_match\": " << (logs_ok ? "true" : "false")
      << ", \"speedup_ok\": " << (speedup_ok ? "true" : "false")
      << ", \"n7_throughput_ok\": " << (n7_ok ? "true" : "false") << "}\n"
      << "}\n";
  std::cout << "wrote " << out_path << '\n';
  return logs_ok && speedup_ok && n7_ok ? 0 : 1;
}
