// Fig. 10: average throughput of the MinBFT implementation versus the number
// of replicas N, with 1 and 20 closed-loop clients.
//
// CPU costs model RSA-1024 on the paper's (2009-era Opteron) hardware:
// sign ~5 ms, verify ~0.2 ms, ~1 ms marshalling+MAC per outgoing message.
// The shape that matters: throughput decreases with N (O(N^2) messages) and
// 20 clients sustain more than 1 client (latency- vs throughput-bound).
#include <iostream>

#include "bench_common.hpp"
#include "tolerance/consensus/minbft_cluster.hpp"

namespace {

using namespace tolerance;

double measure_throughput(int n, int clients, double duration_s) {
  consensus::MinBftConfig cfg;
  cfg.f = (n - 1) / 2;
  cfg.checkpoint_period = 100;     // cp, Table 8
  cfg.log_watermark = 1000;        // L, Table 8
  cfg.view_change_timeout = 280.0; // Tvc, Table 8
  cfg.request_retry_timeout = 30.0; // Texec, Table 8
  cfg.crypto_cost_sign = 5e-3;
  cfg.crypto_cost_verify = 2e-4;
  cfg.cpu_cost_per_send = 1e-3;
  net::LinkConfig link;
  link.base_delay = 1e-3;
  link.jitter = 2e-4;
  link.loss = 5e-4;  // NETEM 0.05% (§VII-A)
  consensus::MinBftCluster cluster(n, cfg, 77, link);

  long completed = 0;
  std::vector<consensus::MinBftClient*> cs;
  for (int c = 0; c < clients; ++c) cs.push_back(&cluster.add_client());
  // Closed loop: each client immediately re-submits on completion.
  std::function<void(consensus::MinBftClient*)> pump =
      [&](consensus::MinBftClient* client) {
        client->submit("write", [&, client](std::uint64_t, const std::string&,
                                            double) {
          ++completed;
          if (cluster.network().now() < duration_s) pump(client);
        });
      };
  for (auto* client : cs) pump(client);
  cluster.network().run_until(duration_s);
  return static_cast<double>(completed) / duration_s;
}

}  // namespace

int main() {
  using namespace tolerance;
  bench::header("Fig. 10 — MinBFT throughput vs cluster size", "Fig. 10");
  const double duration = bench::scaled(10.0, 60.0);
  ConsoleTable table({"N", "1 client (req/s)", "20 clients (req/s)"});
  for (int n = 3; n <= 10; ++n) {
    const double one = measure_throughput(n, 1, duration);
    const double twenty = measure_throughput(n, 20, duration);
    table.add_row({std::to_string(n), ConsoleTable::num(one, 1),
                   ConsoleTable::num(twenty, 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (Fig. 10): both curves decrease with N; the "
               "20-client curve sits above the 1-client curve (pipelining "
               "hides latency until the leader's CPU saturates).\n";
  return 0;
}
