// Chaos battery for the wall-clock MinBFT lane: seeded fault plans (crash +
// restart, frame-corruption storm, targeted state-transfer blackhole) are
// executed against live closed-loop clusters, and the run writes a
// BENCH_chaos.json artifact (CI uploads it each run).
//
// The CI-enforced gates:
//   - recovery_ok     — every plan-driven restart caught the cluster's
//                       committed high-water mark within the bound;
//   - convergence_ok  — after the run, all live replicas' committed logs
//                       are pairwise prefix-consistent and the restarted
//                       replica holds committed state again;
//   - zero_decode / zero_handler — no corrupted or raced frame EVER reached
//                       a codec or protocol handler (corruption must die in
//                       the HMAC layer, counted as auth failures);
//   - corruption_exercised / retry_exercised — the battery actually
//                       injected what it claims to test (a green gate over
//                       zero injections would be vacuous).
//
// Flags:
//   --seeds M      runs per scenario (default: 2, or 5 at
//                  TOLERANCE_BENCH_FULL=1)
//   --out PATH     artifact path (default: BENCH_chaos.json)
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "tolerance/consensus/minbft_runtime.hpp"
#include "tolerance/net/profiles.hpp"

namespace {

using namespace tolerance;

consensus::MinBftConfig chaos_config() {
  consensus::MinBftConfig cfg;
  cfg.f = 1;
  // Fine checkpoints: a recovering replica converges boundary by boundary
  // (each anchored install reaches the latest stable checkpoint), so the
  // period bounds how far behind the live head each round leaves it.
  cfg.checkpoint_period = 10;
  cfg.view_change_timeout = 2.0;
  cfg.request_retry_timeout = 0.4;
  // Lost commit votes must heal well inside the recovery bound: a wedged
  // peer freezes the checkpoint quorum the anchored transfer depends on.
  cfg.commit_repair_timeout = 0.25;
  cfg.batch_timeout = 0.005;
  cfg.state_transfer_timeout = 0.2;
  cfg.state_transfer_backoff = 1.5;
  cfg.state_transfer_max_attempts = 8;
  return cfg;
}

struct ScenarioSpec {
  std::string name;
  net::NetworkProfile profile;
  consensus::ChaosOptions chaos;
  double duration = 3.0;
  /// Gate knobs: which exercised-gates apply, and the recovery bound.
  bool expects_restart = false;
  bool expects_corruption = false;
  bool expects_retry = false;
  double recovery_bound = 2.0;  ///< seconds from restart to caught-up
};

struct ScenarioOutcome {
  consensus::RuntimeLoadStats stats;
  bool convergence_ok = true;
  bool recovery_ok = true;
};

std::vector<ScenarioSpec> battery() {
  std::vector<ScenarioSpec> specs;
  {
    // Crash-restart on a lossy multi-hop path (latency and loss compressed
    // so a seconds-long run commits plenty, but loss and reordering stay
    // real): recovery must ride through retransmissions, not a clean LAN.
    ScenarioSpec s;
    s.name = "crash-restart-lossy";
    s.profile = net::NetworkProfile::lossy_multihop();
    s.profile.replica_link.base_delay = 2e-3;
    s.profile.replica_link.jitter = 3e-3;
    s.profile.replica_link.loss = 0.01;
    s.profile.replica_link.reorder_delay = 4e-3;
    s.profile.client_link.base_delay = 2e-3;
    s.profile.client_link.jitter = 3e-3;
    s.profile.client_link.loss = 0.01;
    s.chaos.plan.events = {
        {0.4, net::FaultKind::kCrash, 2},
        {0.9, net::FaultKind::kRestart, 2},
    };
    s.chaos.watchdog_window = 5.0;
    s.duration = 4.5;
    s.expects_restart = true;
    // Convergence rides the checkpoint cadence, and at lossy-multihop
    // commit rates a boundary stabilizes roughly every second.
    s.recovery_bound = 3.0;
    specs.push_back(std::move(s));
  }
  {
    // Corruption storm at the view-0 leader: a quarter of its outbound
    // bundles get seeded bit flips for a full second.  Everything must die
    // in the HMAC check; commits continue on retransmissions.
    ScenarioSpec s;
    s.name = "corruption-storm";
    s.profile = net::NetworkProfile::lan();
    net::FaultEvent storm;
    storm.at = 0.3;
    storm.kind = net::FaultKind::kCorruptFrames;
    storm.node = 0;
    storm.rate = 0.25;
    storm.duration = 1.0;
    s.chaos.plan.events = {storm};
    s.chaos.watchdog_window = 5.0;
    s.duration = 2.0;
    s.expects_corruption = true;
    specs.push_back(std::move(s));
  }
  {
    // Targeted blackhole of the recovering replica's outbound across its
    // restart: the first state request dies on the wire, so rejoining is
    // only possible through the retry machine (rotation + backoff).
    ScenarioSpec s;
    s.name = "targeted-drop-recovery";
    s.profile = net::NetworkProfile::lan();
    net::FaultEvent blackhole;
    blackhole.at = 0.55;
    blackhole.kind = net::FaultKind::kDropPair;
    blackhole.node = 2;  // peer defaults to kAllPeers: full outbound cut
    blackhole.rate = 1.0;
    blackhole.duration = 0.6;
    s.chaos.plan.events = {
        {0.3, net::FaultKind::kCrash, 2},
        blackhole,
        {0.6, net::FaultKind::kRestart, 2},
    };
    s.chaos.watchdog_window = 5.0;
    s.duration = 3.5;
    s.expects_restart = true;
    s.expects_retry = true;
    s.recovery_bound = 2.6;  // the blackhole itself eats the first ~1.15s
    specs.push_back(std::move(s));
  }
  return specs;
}

ScenarioOutcome run_scenario(const ScenarioSpec& spec, std::uint64_t seed) {
  consensus::MinBftRuntimeCluster cluster(3, chaos_config(), seed,
                                          spec.profile, 4);
  consensus::ChaosOptions chaos = spec.chaos;
  chaos.plan.seed = seed ^ 0xc4a05ull;
  cluster.set_chaos(chaos);
  ScenarioOutcome out;
  out.stats = cluster.run_closed_loop(6, spec.duration);

  // Convergence: live replicas' committed logs pairwise prefix-consistent,
  // and after a restart the rejoined replica holds committed state again.
  const auto live = cluster.live_replicas();
  std::vector<std::vector<std::string>> logs;
  for (const auto id : live) {
    auto& r = cluster.replica(id);
    const auto& full = r.service().log();
    const std::size_t committed = std::min(r.committed_log_size(), full.size());
    logs.emplace_back(full.begin(),
                      full.begin() + static_cast<std::ptrdiff_t>(committed));
  }
  for (std::size_t a = 0; a < logs.size(); ++a) {
    for (std::size_t b = a + 1; b < logs.size(); ++b) {
      const auto& s = logs[a].size() <= logs[b].size() ? logs[a] : logs[b];
      const auto& l = logs[a].size() <= logs[b].size() ? logs[b] : logs[a];
      if (!std::equal(s.begin(), s.end(), l.begin())) {
        out.convergence_ok = false;
      }
    }
  }
  if (spec.expects_restart) {
    out.convergence_ok = out.convergence_ok && live.size() == 3 &&
                         out.stats.st_completions >= 1;
    out.recovery_ok = !out.stats.recovery_seconds.empty();
    for (const double r : out.stats.recovery_seconds) {
      out.recovery_ok = out.recovery_ok && r <= spec.recovery_bound;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::header("Chaos battery — crash-restart, corruption, blackholes",
                "the intrusion-tolerant service layer under injected "
                "transport and node faults (the recovery half of §VII)");
  int num_seeds = bench::scaled(2, 5);
  std::string out_path = "BENCH_chaos.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seeds" && i + 1 < argc) num_seeds = std::atoi(argv[i + 1]);
    if (arg == "--out" && i + 1 < argc) out_path = argv[i + 1];
  }
  if (num_seeds <= 0) num_seeds = 2;

  ConsoleTable table({"scenario", "seed", "completed", "crash/restart",
                      "recovery(s)", "st a/r/c", "corrupt", "auth", "stalls",
                      "ok"});
  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"chaos\",\n  \"seeds\": " << num_seeds
      << ",\n  \"scenarios\": [\n";

  bool all_ok = true;
  bool first = true;
  for (const ScenarioSpec& spec : battery()) {
    // Aggregated over seeds; gates are all-seeds-must-hold.
    bool recovery_ok = true, convergence_ok = true;
    bool zero_decode = true, zero_handler = true;
    std::uint64_t corruptions = 0, retries = 0, completed = 0, stalls = 0;
    double worst_recovery = 0.0;
    for (int i = 0; i < num_seeds; ++i) {
      const std::uint64_t seed = 1000 + 17 * static_cast<std::uint64_t>(i);
      const ScenarioOutcome o = run_scenario(spec, seed);
      recovery_ok = recovery_ok && o.recovery_ok;
      convergence_ok = convergence_ok && o.convergence_ok;
      zero_decode = zero_decode && o.stats.decode_errors == 0;
      zero_handler = zero_handler && o.stats.handler_errors == 0;
      corruptions += o.stats.injected_corruptions;
      retries += o.stats.st_retries;
      completed += o.stats.completed;
      stalls += o.stats.stall_reports;
      for (const double r : o.stats.recovery_seconds) {
        worst_recovery = std::max(worst_recovery, r);
      }
      std::string recovery_cell = "-";
      if (!o.stats.recovery_seconds.empty()) {
        recovery_cell = ConsoleTable::num(o.stats.recovery_seconds.front(), 2);
      }
      table.add_row(
          {spec.name, std::to_string(seed),
           std::to_string(o.stats.completed),
           std::to_string(o.stats.crashes) + "/" +
               std::to_string(o.stats.restarts),
           recovery_cell,
           std::to_string(o.stats.st_attempts) + "/" +
               std::to_string(o.stats.st_retries) + "/" +
               std::to_string(o.stats.st_completions),
           std::to_string(o.stats.injected_corruptions),
           std::to_string(o.stats.auth_failures),
           std::to_string(o.stats.stall_reports),
           (o.recovery_ok && o.convergence_ok && o.stats.decode_errors == 0 &&
            o.stats.handler_errors == 0)
               ? "yes"
               : "NO"});
    }
    const bool corruption_exercised = !spec.expects_corruption ||
                                      corruptions > 0;
    const bool retry_exercised = !spec.expects_retry || retries > 0;
    const bool progress_ok = completed > 0;
    const bool ok = recovery_ok && convergence_ok && zero_decode &&
                    zero_handler && corruption_exercised && retry_exercised &&
                    progress_ok;
    all_ok = all_ok && ok;

    if (!first) out << ",\n";
    first = false;
    out << "   {\"name\": \"" << spec.name << "\",\n"
        << "    \"completed\": " << completed
        << ", \"injected_corruptions\": " << corruptions
        << ", \"st_retries\": " << retries
        << ", \"stall_reports\": " << stalls
        << ", \"worst_recovery_seconds\": " << worst_recovery
        << ", \"recovery_bound_seconds\": " << spec.recovery_bound << ",\n"
        << "    \"gates\": {\"recovery_ok\": "
        << (recovery_ok ? "true" : "false")
        << ", \"convergence_ok\": " << (convergence_ok ? "true" : "false")
        << ", \"zero_decode\": " << (zero_decode ? "true" : "false")
        << ", \"zero_handler\": " << (zero_handler ? "true" : "false")
        << ", \"corruption_exercised\": "
        << (corruption_exercised ? "true" : "false")
        << ", \"retry_exercised\": " << (retry_exercised ? "true" : "false")
        << ", \"progress_ok\": " << (progress_ok ? "true" : "false")
        << ", \"ok\": " << (ok ? "true" : "false") << "}\n   }";
  }
  out << "\n  ],\n  \"chaos_gates_ok\": " << (all_ok ? "true" : "false")
      << "\n}\n";

  table.print(std::cout);
  std::cout << "\nchaos gates (bounded recovery, committed convergence, "
               "corruption dies in the auth layer): "
            << (all_ok ? "PASS" : "FAIL") << '\n'
            << "wrote " << out_path << '\n';
  return all_ok ? 0 : 1;
}
