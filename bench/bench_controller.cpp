// Controller fault-injection sweep: runs the controller-fault scenario
// family (crash mid-intrusion, GC pause, poisoned solver, slow solve under
// churn) with the asynchronous level-2 controller's staleness failsafe ON
// and with the inline/no-failsafe baseline OFF, over a seed sweep, and
// writes a BENCH_controller.json artifact (CI uploads it each run).
//
// The CI-enforced gates mirror the ScenarioController test battery:
//   - failsafe ON: availability and service hold (>= 0.95 mean), the ladder
//     actually engages FALLBACK on the fault scenarios, and no cycle is
//     ever frozen;
//   - failsafe OFF: the scripted fault freezes the level-2 step, and on the
//     fault scenarios the baseline's worst-seed service measurably trails
//     the failsafe's.
//
// Flags:
//   --threads N    parallel worker count (default: TOLERANCE_THREADS or
//                  hardware concurrency)
//   --seeds M      episodes per scenario (default: 4, or 16 at
//                  TOLERANCE_BENCH_FULL=1)
//   --out PATH     artifact path (default: BENCH_controller.json)
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "tolerance/emulation/scenario_runner.hpp"
#include "tolerance/util/stopwatch.hpp"

namespace {

constexpr const char* kFamily[] = {
    "controller-crash-mid-intrusion",
    "controller-gc-pause",
    "controller-solver-failures",
    "controller-slow-solve-churn",
};

// Slow-solve-churn is the no-fault control of the family: the ladder rides
// FRESH<->HOLD and the inline baseline is decision-identical, so the
// degradation gates only apply to the three fault scenarios.
bool has_fault(const std::string& name) {
  return name != "controller-slow-solve-churn";
}

struct Aggregate {
  double availability = 0.0;
  double service = 0.0;
  double worst_min_avail = 1.0;  ///< min over seeds of min(avail, svc)
  std::uint64_t policy_epoch = 0;
  long resolves = 0;
  long rejected = 0;
  long hold_cycles = 0;
  long fallback_cycles = 0;
  long frozen_cycles = 0;
  int max_staleness = 0;
  std::string mode;
};

Aggregate aggregate(const std::vector<tolerance::emulation::ScenarioResult>& rs) {
  Aggregate a;
  for (const auto& r : rs) {
    a.availability += r.availability;
    a.service += r.service_availability;
    a.worst_min_avail = std::min(
        a.worst_min_avail, std::min(r.availability, r.service_availability));
    a.policy_epoch = std::max(a.policy_epoch, r.policy_epoch);
    a.resolves += r.controller_resolves;
    a.rejected += r.controller_rejected;
    a.hold_cycles += r.controller_hold_cycles;
    a.fallback_cycles += r.controller_fallback_cycles;
    a.frozen_cycles += r.controller_frozen_cycles;
    a.max_staleness = std::max(a.max_staleness, r.controller_max_staleness);
  }
  const auto n = static_cast<double>(rs.size());
  a.availability /= n;
  a.service /= n;
  a.mode = rs.front().controller_mode;
  return a;
}

void emit(std::ofstream& out, const char* key, const Aggregate& a) {
  out << "    \"" << key << "\": {\"availability\": " << a.availability
      << ", \"service_availability\": " << a.service
      << ", \"worst_min_availability\": " << a.worst_min_avail
      << ", \"policy_epoch\": " << a.policy_epoch
      << ", \"resolves\": " << a.resolves << ", \"rejected\": " << a.rejected
      << ", \"hold_cycles\": " << a.hold_cycles
      << ", \"fallback_cycles\": " << a.fallback_cycles
      << ", \"frozen_cycles\": " << a.frozen_cycles
      << ", \"max_staleness\": " << a.max_staleness << ", \"mode\": \""
      << a.mode << "\"}";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tolerance;
  bench::header("Controller fault-injection sweep — staleness failsafe",
                "the robustness evaluation of the level-2 re-solver: "
                "FRESH/HOLD/FALLBACK ladder vs. a frozen inline baseline");
  const int threads = bench::parse_threads(argc, argv);
  bench::print_threads(threads);

  int num_seeds = bench::scaled(4, 16);
  std::string out_path = "BENCH_controller.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seeds" && i + 1 < argc) num_seeds = std::atoi(argv[i + 1]);
    if (arg == "--out" && i + 1 < argc) out_path = argv[i + 1];
  }
  if (num_seeds <= 0) num_seeds = 4;
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < num_seeds; ++i) {
    seeds.push_back(7 + 7 * static_cast<std::uint64_t>(i));
  }

  ConsoleTable table({"scenario", "failsafe", "T(A)", "svc(A)", "ep", "res",
                      "rej", "hold", "fb", "frozen", "stale", "mode",
                      "seconds"});
  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"controller\",\n  \"seeds\": " << num_seeds
      << ",\n  \"threads\": " << threads << ",\n  \"scenarios\": [\n";

  bool all_gates_ok = true;
  bool first = true;
  double total_seconds = 0.0;
  for (const char* name : kFamily) {
    const auto& scenario = emulation::find_scenario(name);
    emulation::ScenarioRunner::Options on_opt;
    on_opt.async_controller = true;
    emulation::ScenarioRunner::Options off_opt;
    off_opt.async_controller = false;
    const auto on_runner =
        emulation::make_scenario_runner(scenario, 42, 60, on_opt);
    const auto off_runner =
        emulation::make_scenario_runner(scenario, 42, 60, off_opt);

    Stopwatch clock;
    const auto on = aggregate(on_runner.run_many(seeds, threads));
    const double on_seconds = clock.elapsed_seconds();
    clock.reset();
    const auto off = aggregate(off_runner.run_many(seeds, threads));
    const double off_seconds = clock.elapsed_seconds();
    total_seconds += on_seconds + off_seconds;

    const bool fault = has_fault(name);
    const bool poison = std::string(name) == "controller-solver-failures";
    // The gates are per-scenario, matching what each scenario demonstrates.
    //
    // failsafe_availability_ok — crash / GC pause: mean availability AND
    // service hold with the failsafe on.  Solver failures: availability
    // holds (service varies with detector luck, not with the controller —
    // the scenario's point is the poison guard).  Slow-solve churn (the
    // no-fault control): the async controller must not CHANGE the outcome —
    // its means are bit-equal to the inline baseline's.
    const bool failsafe_availability_ok =
        fault ? (on.availability >= 0.95 && (poison || on.service >= 0.95))
              : (on.availability == off.availability &&
                 on.service == off.service);
    // The failsafe never freezes a cycle; the ladder engages FALLBACK on
    // every fault scenario and stays sheathed on the no-fault control.
    const bool no_frozen_cycles = on.frozen_cycles == 0;
    const bool fallback_engages =
        fault ? on.fallback_cycles > 0 : on.fallback_cycles == 0;
    // Every episode ends recovered: mode FRESH with at least one post-fault
    // flip landed, and on the poison scenario every scripted bad solve was
    // rejected (5 per episode) without a single one reaching the live table.
    const bool policy_recovers = on.mode == "fresh" && on.policy_epoch >= 2 &&
                                 (!poison || on.rejected == 5L * num_seeds);
    // The inline baseline freezes for the scripted window; on the scenarios
    // whose fault hits mid-incident (crash / GC pause) its worst seed
    // measurably trails the failsafe's.
    const bool baseline_degrades =
        !fault || (off.frozen_cycles > 0 &&
                   (poison || off.worst_min_avail < on.worst_min_avail));
    const bool ok = failsafe_availability_ok && no_frozen_cycles &&
                    fallback_engages && policy_recovers && baseline_degrades;
    all_gates_ok = all_gates_ok && ok;

    const auto row = [&](const char* label, const Aggregate& a,
                         double seconds) {
      table.add_row({std::string(name), label, ConsoleTable::num(a.availability, 3),
                     ConsoleTable::num(a.service, 3),
                     std::to_string(a.policy_epoch), std::to_string(a.resolves),
                     std::to_string(a.rejected), std::to_string(a.hold_cycles),
                     std::to_string(a.fallback_cycles),
                     std::to_string(a.frozen_cycles),
                     std::to_string(a.max_staleness), a.mode,
                     ConsoleTable::num(seconds, 2)});
    };
    row("on", on, on_seconds);
    row("off", off, off_seconds);

    if (!first) out << ",\n";
    first = false;
    out << "   {\"name\": \"" << name << "\",\n";
    emit(out, "failsafe_on", on);
    out << ",\n";
    emit(out, "failsafe_off", off);
    out << ",\n    \"gates\": {\"failsafe_availability_ok\": "
        << (failsafe_availability_ok ? "true" : "false")
        << ", \"no_frozen_cycles\": " << (no_frozen_cycles ? "true" : "false")
        << ", \"fallback_engages\": " << (fallback_engages ? "true" : "false")
        << ", \"policy_recovers\": " << (policy_recovers ? "true" : "false")
        << ", \"baseline_degrades\": " << (baseline_degrades ? "true" : "false")
        << ", \"ok\": " << (ok ? "true" : "false") << "},\n    \"seconds\": "
        << on_seconds + off_seconds << "\n   }";
  }
  out << "\n  ],\n  \"seconds_total\": " << total_seconds
      << ",\n  \"controller_gates_ok\": " << (all_gates_ok ? "true" : "false")
      << "\n}\n";

  table.print(std::cout);
  std::cout << "\ncontroller gates (failsafe holds availability, FALLBACK "
               "engages, zero frozen cycles, frozen baseline degrades): "
            << (all_gates_ok ? "PASS" : "FAIL") << '\n'
            << "wrote " << out_path << '\n';
  return all_gates_ok ? 0 : 1;
}
