// Fig. 11: empirical distributions Z-hat of priority-weighted IDS alerts per
// container (Table 4), under intrusion and no intrusion, estimated from
// M = 25,000 samples per container.  Prints summary statistics and a coarse
// histogram per container.
#include <iostream>

#include "bench_common.hpp"
#include "tolerance/emulation/estimation.hpp"
#include "tolerance/stats/summary.hpp"

int main() {
  using namespace tolerance;
  bench::header("Fig. 11 — empirical alert distributions Z-hat", "Fig. 11");
  const int samples = bench::scaled(4000, 25000);
  Rng rng(2024);
  ConsoleTable table({"container", "vulnerability", "mean |H", "p95 |H",
                      "mean |C", "p95 |C", "KL(H||C)"});
  for (const auto& profile : emulation::container_catalog()) {
    auto s = emulation::collect_alert_samples(profile, samples, 80.0, rng);
    Rng fit_rng(static_cast<std::uint64_t>(profile.replica_id));
    const auto detector =
        emulation::fit_detector(profile, samples, 11, 80.0, fit_rng);
    table.add_row({std::to_string(profile.replica_id),
                   profile.vulnerabilities.front(),
                   ConsoleTable::num(stats::mean(s.healthy), 0),
                   ConsoleTable::num(stats::quantile(s.healthy, 0.95), 0),
                   ConsoleTable::num(stats::mean(s.compromised), 0),
                   ConsoleTable::num(stats::quantile(s.compromised, 0.95), 0),
                   ConsoleTable::num(detector.kl_healthy_compromised, 2)});
  }
  table.print(std::cout);
  std::cout <<
      "\nExpected shape (Fig. 11): intrusion distributions shifted far right "
      "of the\nno-intrusion ones; brute-force containers (1-3, 9, 10) reach "
      "the largest alert\ncounts (the paper's ftp/ssh/telnet panel extends "
      "to ~20000).\n";
  return 0;
}
