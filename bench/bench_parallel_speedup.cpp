// Parallel simulation engine smoke bench: episodes/sec of
// NodeSimulator::run_many at 1 thread versus N threads on the paper's node
// model (Table 8 parameters, alpha* = 0.76 threshold policy), plus a
// bit-identical determinism check between the two runs.
//
// Writes a BENCH_parallel.json artifact (CI uploads it each run to track
// the perf trajectory).  Flags:
//   --threads N    parallel worker count (default: TOLERANCE_THREADS or
//                  hardware concurrency)
//   --episodes M   episode budget (default: 2000, or 20000 at
//                  TOLERANCE_BENCH_FULL=1)
//   --out PATH     artifact path (default: BENCH_parallel.json)
// Exits non-zero if the parallel stats are not bit-identical to serial.
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "tolerance/pomdp/node_simulator.hpp"
#include "tolerance/solvers/threshold_policy.hpp"
#include "tolerance/util/stopwatch.hpp"

namespace {

using namespace tolerance;

bool bit_identical(const pomdp::NodeRunStats& a, const pomdp::NodeRunStats& b) {
  return a.avg_cost == b.avg_cost &&
         a.avg_time_to_recovery == b.avg_time_to_recovery &&
         a.recovery_frequency == b.recovery_frequency &&
         a.availability == b.availability && a.steps == b.steps &&
         a.num_compromises == b.num_compromises &&
         a.num_recoveries == b.num_recoveries &&
         a.num_crashes == b.num_crashes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tolerance;
  bench::header("Parallel engine — run_many episodes/sec, 1 vs N threads",
                "the §VIII Monte-Carlo evaluation machinery");
  const int threads = bench::parse_threads(argc, argv);
  bench::print_threads(threads);

  int episodes = bench::scaled(2000, 20000);
  std::string out_path = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--episodes" && i + 1 < argc) episodes = std::atoi(argv[i + 1]);
    if (arg == "--out" && i + 1 < argc) out_path = argv[i + 1];
  }
  if (episodes <= 0) episodes = 2000;
  const int horizon = 200;

  const pomdp::NodeModel model(bench::paper_node_params(0.1));
  const auto obs = bench::paper_observation_model();
  const pomdp::NodeSimulator simulator(model, obs);
  const auto policy = solvers::ThresholdPolicy::constant(0.76).as_policy();

  Stopwatch clock;
  Rng serial_rng(7);
  const auto serial = simulator.run_many(policy, horizon, episodes,
                                         serial_rng, /*threads=*/1);
  const double serial_seconds = clock.elapsed_seconds();

  clock.reset();
  Rng parallel_rng(7);
  const auto parallel =
      simulator.run_many(policy, horizon, episodes, parallel_rng, threads);
  const double parallel_seconds = clock.elapsed_seconds();

  const bool identical = bit_identical(serial, parallel);
  const double serial_eps = episodes / std::max(serial_seconds, 1e-9);
  const double parallel_eps = episodes / std::max(parallel_seconds, 1e-9);
  const double speedup = parallel_eps / serial_eps;

  ConsoleTable table({"threads", "seconds", "episodes/sec", "speedup"});
  table.add_row({"1", ConsoleTable::num(serial_seconds, 3),
                 ConsoleTable::num(serial_eps, 1), "1.00"});
  table.add_row({std::to_string(threads),
                 ConsoleTable::num(parallel_seconds, 3),
                 ConsoleTable::num(parallel_eps, 1),
                 ConsoleTable::num(speedup, 2)});
  table.print(std::cout);
  std::cout << "\nbit-identical stats at 1 vs " << threads
            << " threads: " << (identical ? "YES" : "NO — BUG") << '\n'
            << "avg_cost " << ConsoleTable::num(serial.avg_cost, 4)
            << ", availability " << ConsoleTable::num(serial.availability, 4)
            << ", T(R) " << ConsoleTable::num(serial.avg_time_to_recovery, 3)
            << '\n';

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"parallel_runner\",\n"
      << "  \"episodes\": " << episodes << ",\n"
      << "  \"horizon\": " << horizon << ",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"seconds_serial\": " << serial_seconds << ",\n"
      << "  \"seconds_parallel\": " << parallel_seconds << ",\n"
      << "  \"episodes_per_sec_serial\": " << serial_eps << ",\n"
      << "  \"episodes_per_sec_parallel\": " << parallel_eps << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"bit_identical\": " << (identical ? "true" : "false") << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << '\n';

  return identical ? 0 : 1;
}
