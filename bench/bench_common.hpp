// Shared plumbing for the table/figure benches.
//
// Every bench prints the paper-shaped table to stdout.  By default the
// benches run at a reduced scale so the whole suite finishes in minutes;
// set TOLERANCE_BENCH_FULL=1 to run at the paper's scale (20 seeds,
// smax = 2048, M = 25,000 samples, ...).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "tolerance/pomdp/node_model.hpp"
#include "tolerance/pomdp/observation_model.hpp"
#include "tolerance/util/table.hpp"

namespace tolerance::bench {

inline bool full_scale() {
  const char* env = std::getenv("TOLERANCE_BENCH_FULL");
  return env != nullptr && std::string(env) == "1";
}

inline int scaled(int quick, int full) { return full_scale() ? full : quick; }

inline void header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "(reproduces " << paper_ref << "; "
            << (full_scale() ? "full scale" : "quick scale — set "
                               "TOLERANCE_BENCH_FULL=1 for paper scale")
            << ")\n\n";
}

/// Table 8 node parameters used across the solver experiments.
inline pomdp::NodeParams paper_node_params(double p_attack = 0.1) {
  pomdp::NodeParams p;
  p.p_attack = p_attack;
  p.p_crash_healthy = 1e-5;
  p.p_crash_compromised = 1e-3;
  p.p_update = 2e-2;
  p.eta = 2.0;
  return p;
}

inline pomdp::BetaBinObservationModel paper_observation_model() {
  return pomdp::BetaBinObservationModel::paper_default(10);
}

}  // namespace tolerance::bench
