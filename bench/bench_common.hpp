// Shared plumbing for the table/figure benches.
//
// Every bench prints the paper-shaped table to stdout.  By default the
// benches run at a reduced scale so the whole suite finishes in minutes;
// set TOLERANCE_BENCH_FULL=1 to run at the paper's scale (20 seeds,
// smax = 2048, M = 25,000 samples, ...).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "tolerance/pomdp/node_model.hpp"
#include "tolerance/pomdp/observation_model.hpp"
#include "tolerance/util/parallel.hpp"
#include "tolerance/util/table.hpp"

namespace tolerance::bench {

inline bool full_scale() {
  const char* env = std::getenv("TOLERANCE_BENCH_FULL");
  return env != nullptr && std::string(env) == "1";
}

inline int scaled(int quick, int full) { return full_scale() ? full : quick; }

/// Worker count for the parallel sweeps: `--threads N` (or `--threads=N`)
/// beats the TOLERANCE_THREADS env var beats hardware concurrency.  Thread
/// count never changes bench output — episode streams are split per index
/// (Rng::stream) and reduced in index order — only wall-clock time.
/// A malformed value is a hard error: silently falling back to hardware
/// concurrency would hand someone profiling "--threads 1" a parallel run.
inline int parse_threads(int argc, char** argv) {
  int requested = 0;
  const auto parse_or_die = [](const char* value) {
    char* end = nullptr;
    const long v = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || v <= 0) {
      std::cerr << "error: --threads expects a positive integer, got '"
                << value << "'\n";
      std::exit(2);
    }
    return static_cast<int>(std::min<long>(v, 4096));
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      requested = parse_or_die(argv[i + 1]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      requested = parse_or_die(arg.c_str() + 10);
    }
  }
  return util::resolve_threads(requested);
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "(reproduces " << paper_ref << "; "
            << (full_scale() ? "full scale" : "quick scale — set "
                               "TOLERANCE_BENCH_FULL=1 for paper scale")
            << ")\n\n";
}

inline void print_threads(int threads) {
  std::cout << "threads: " << threads
            << " (override with --threads N or TOLERANCE_THREADS)\n\n";
}

/// Table 8 node parameters used across the solver experiments.
inline pomdp::NodeParams paper_node_params(double p_attack = 0.1) {
  pomdp::NodeParams p;
  p.p_attack = p_attack;
  p.p_crash_healthy = 1e-5;
  p.p_crash_compromised = 1e-3;
  p.p_update = 2e-2;
  p.eta = 2.0;
  return p;
}

inline pomdp::BetaBinObservationModel paper_observation_model() {
  return pomdp::BetaBinObservationModel::paper_default(10);
}

}  // namespace tolerance::bench
