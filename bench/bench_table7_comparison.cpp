// Table 7 / Fig. 12: TOLERANCE versus the baseline control strategies of
// §VIII-B — average availability T(A), average time-to-recovery T(R) and
// recovery frequency F(R), across DeltaR in {5, 15, 25, inf} and
// N1 in {3, 6, 9}, with 20 random seeds and horizon 10^3 (60 s steps).
//
// Pipeline exactly as §VIII-A: fit the detector Z-hat from labeled samples,
// solve the replication CMDP with Algorithm 2, then run the emulation.
#include <iostream>

#include "bench_common.hpp"
#include "tolerance/core/tolerance_system.hpp"
#include "tolerance/solvers/cmdp_lp.hpp"
#include "tolerance/stats/summary.hpp"

namespace {

using namespace tolerance;

struct Row {
  stats::MeanCi availability;
  stats::MeanCi ttr;
  stats::MeanCi freq;
};

// One emulation trace per seed, sharded across workers; the accumulators
// fold the index-ordered results, so the CIs match a serial sweep exactly.
Row evaluate(const core::Evaluator& evaluator, int seeds, int threads) {
  std::vector<std::uint64_t> seed_list;
  for (int seed = 0; seed < seeds; ++seed) {
    seed_list.push_back(static_cast<std::uint64_t>(seed) + 1);
  }
  const auto results = evaluator.run_many(seed_list, threads);
  stats::SummaryAccumulator avail, ttr, freq;
  for (const auto& r : results) {
    avail.add(r.availability);
    ttr.add(r.time_to_recovery);
    freq.add(r.recovery_frequency);
  }
  return {avail.ci(), ttr.ci(), freq.ci()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tolerance;
  bench::header("Table 7 / Fig. 12 — TOLERANCE vs baselines",
                "Table 7 and Fig. 12");
  const int threads = bench::parse_threads(argc, argv);
  bench::print_threads(threads);
  const int seeds = bench::scaled(5, 20);
  const int horizon = bench::scaled(500, 1000);

  // Training phase (§VIII-A): detector + replication strategy.
  Rng fit_rng(99);
  const auto detector = emulation::fit_pooled_detector(
      bench::scaled(2000, 25000) / 10, 11, 80.0, fit_rng);
  std::cout << "fitted detector: KL(Zhat(.|H) || Zhat(.|C)) = "
            << ConsoleTable::num(detector.kl_healthy_compromised, 2) << "\n";

  ConsoleTable table({"N1", "dR", "Strategy", "T(A)", "T(R)", "F(R)"});
  for (int n1 : {3, 6, 9}) {
    const int f = std::min((n1 - 1) / 2, 2);  // §VIII hyperparameters
    const auto cmdp = pomdp::SystemCmdp::parametric(13, f, 0.9, 0.95, 0.3);
    auto replication = solvers::solve_replication_lp(cmdp);
    for (int dr : {5, 15, 25, 0}) {
      for (const auto strategy :
           {core::StrategyKind::Tolerance, core::StrategyKind::NoRecovery,
            core::StrategyKind::Periodic,
            core::StrategyKind::PeriodicAdaptive}) {
        core::EvaluationConfig config;
        config.strategy = strategy;
        config.initial_nodes = n1;
        config.delta_r = dr;
        config.horizon = horizon;
        config.f = f;
        config.max_nodes = 13;
        config.recovery_threshold = 0.76;  // alpha*, Fig. 13b
        config.node_params = bench::paper_node_params(0.1);
        config.testbed.attacker.start_probability = 0.1;
        // No spontaneous healing in the testbed: Table 7's NO-RECOVERY rows
        // report T(R) = horizon exactly.
        config.testbed.p_update = 0.0;
        const core::Evaluator evaluator(
            config, detector,
            replication.status == lp::LpStatus::Optimal
                ? std::optional<solvers::CmdpSolution>(replication)
                : std::nullopt);
        const Row row = evaluate(evaluator, seeds, threads);
        table.add_row(
            {std::to_string(n1), dr > 0 ? std::to_string(dr) : "inf",
             core::to_string(strategy),
             ConsoleTable::mean_pm(row.availability.mean,
                                   row.availability.half_width),
             ConsoleTable::mean_pm(row.ttr.mean, row.ttr.half_width),
             ConsoleTable::mean_pm(row.freq.mean, row.freq.half_width, 3)});
      }
    }
  }
  table.print(std::cout);
  std::cout <<
      "\nExpected shape (Table 7 / Fig. 12):\n"
      " * TOLERANCE: T(A) ~ 1.0, T(R) of a few steps, F(R) ~ 0.05-0.1 — "
      "identical across DeltaR\n   (the belief threshold fires before the "
      "BTR deadline).\n"
      " * NO-RECOVERY: T(A) far below 1, T(R) = horizon, F(R) = 0; "
      "availability roughly doubles from N1=3 to N1=9.\n"
      " * PERIODIC(-ADAPTIVE): close to TOLERANCE at small DeltaR, degrade "
      "towards NO-RECOVERY as DeltaR -> inf;\n   T(R) an order of magnitude "
      "above TOLERANCE at DeltaR >= 15.\n";
  return 0;
}
