// Fig. 16: example transition function f_S(s' | s, a = 0) of Prob. 2,
// estimated from simulations of Prob. 1 (the paper's route, Appendix E) and
// compared against the parametric binomial-survival kernel.
#include <iostream>

#include "bench_common.hpp"
#include "tolerance/pomdp/system_model.hpp"
#include "tolerance/solvers/threshold_policy.hpp"

int main() {
  using namespace tolerance;
  bench::header("Fig. 16 — system-level transition kernel f_S", "Fig. 16");
  const int smax = 20;
  const pomdp::NodeModel model(bench::paper_node_params(0.1));
  const auto obs = bench::paper_observation_model();
  Rng rng(7);
  const auto policy = solvers::ThresholdPolicy::constant(0.76).as_policy();
  const auto estimated = pomdp::SystemCmdp::estimate_from_node_simulation(
      smax, 3, 0.9, model, obs, policy, bench::scaled(6, 40),
      bench::scaled(2000, 10000), rng);
  const auto parametric =
      pomdp::SystemCmdp::parametric(smax, 3, 0.9, 0.9, 0.55, 1e-4);

  for (const auto* cmdp : {&estimated, &parametric}) {
    std::cout << (cmdp == &estimated
                      ? "estimated from Prob. 1 simulations:\n"
                      : "parametric binomial-survival kernel:\n");
    ConsoleTable table({"s'", "f(s'|s=0,0)", "f(s'|s=10,0)", "f(s'|s=20,0)"});
    for (int next = 0; next <= smax; next += 2) {
      table.add_row({std::to_string(next),
                     ConsoleTable::num(cmdp->trans(0, 0, next), 4),
                     ConsoleTable::num(cmdp->trans(10, 0, next), 4),
                     ConsoleTable::num(cmdp->trans(20, 0, next), 4)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected shape: single-humped rows; the hump sits near s' "
               "~= s for healthy states and recovers towards high s' from "
               "low states (local recoveries pull nodes back).\n";
  return 0;
}
