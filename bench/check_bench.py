#!/usr/bin/env python3
"""Bench-regression gate: compare fresh bench JSON against committed baselines.

Usage:
    check_bench.py --consensus BENCH_consensus.json [--runtime BENCH_runtime.json]
                   [--overload BENCH_overload.json]
                   [--controller BENCH_controller.json]
                   [--chaos BENCH_chaos.json]
                   [--baseline-dir bench/baselines] [--tolerance 0.10]

Four kinds of checks, matched to what each lane can promise:

* BENCH_consensus.json comes from the deterministic simulated-time lane, so
  its throughput numbers are reproducible modulo the C++ standard library's
  distribution implementations.  Every per-cell metric must stay within
  --tolerance (relative) of the committed baseline, and the boolean gates
  (logs_match, speedup_ok, n7_throughput_ok) must hold outright.

* BENCH_runtime.json comes from the wall-clock lane and is load/noise
  dependent, so no numeric pinning: its own embedded gates (zero decode/
  handler/auth errors, committed-log agreement, sim-lane equivalence, the
  WAN improvement gate and the LAN regression guard) must all be true, and
  the sweep must cover the expected (profile, n) grid.

* BENCH_overload.json comes from the admission-control sweep (simulated
  time, so deterministic): every valve-on flood cell must keep admitted
  availability >= 0.95 and queue depth bounded, and the embedded gates
  (valve effective, transparent at 10x, no-valve baseline still melts)
  must hold outright.

* BENCH_chaos.json comes from the wall-clock chaos battery (crash-restart,
  frame corruption, targeted blackholes), so no numeric pinning: all three
  scenarios must be present, every embedded gate (bounded recovery,
  committed-log convergence, corruption dying in the auth layer, the
  injections actually exercised) must hold, the liveness watchdog must
  report zero stalls, and the worst recovery must sit inside its bound.

* BENCH_controller.json comes from the controller fault-injection sweep
  (simulated time, so deterministic): the four named fault scenarios must
  all be present, each cell's embedded gates (failsafe availability holds,
  FALLBACK engages, zero frozen cycles, the policy recovers to FRESH, the
  frozen inline baseline degrades) must hold outright, and the failsafe-on
  cells must report zero frozen cycles and an advanced policy epoch.

On failure every offending metric is named with its cell, the baseline
value, the fresh value, and the relative drift, so the CI log reads as a
diff rather than a bare non-zero exit.
"""

import argparse
import json
import sys

EXPECTED_RUNTIME_GRID = {(p, n) for p in ("LAN", "WAN") for n in (3, 7, 13, 21, 31)}

# Deterministic per-cell metrics worth pinning.  avg_batch is load-shaped and
# usig_cache_hits is an implementation counter; throughput and speedup are
# the observables the optimization work targets.
CONSENSUS_CELL_METRICS = ("unbatched_req_s", "batched_req_s", "speedup")


def fail(msg):
    print(f"check_bench: FAIL: {msg}")
    return 1


def rel_drift(value, base):
    """Relative drift of a fresh value against its baseline."""
    return abs(value - base) / max(abs(base), 1e-9)


def diff_metric(cell, metric, base_value, value, tolerance):
    """Return a readable one-line diff if the metric drifted, else None."""
    if base_value is None or value is None:
        return f"{cell} {metric}: missing (baseline={base_value!r}, fresh={value!r})"
    rel = rel_drift(value, base_value)
    if rel <= tolerance:
        return None
    return (
        f"{cell:<10} {metric:<16} baseline={base_value:<12g} "
        f"fresh={value:<12g} drift={rel:+.1%} (tolerance ±{tolerance:.0%})"
    )


def check_consensus(fresh, baseline, tolerance):
    errors = 0
    for key, value in baseline.get("gates", {}).items():
        got = fresh.get("gates", {}).get(key)
        if got is not True:
            errors += fail(f"consensus gate {key!r} is {got!r}, expected true")
    base_cells = {row["n"]: row for row in baseline.get("sweep", [])}
    fresh_cells = {row["n"]: row for row in fresh.get("sweep", [])}
    for n, base_row in sorted(base_cells.items()):
        row = fresh_cells.get(n)
        if row is None:
            errors += fail(f"consensus sweep lost the n={n} cell")
            continue
        if not row.get("logs_match", False):
            errors += fail(f"consensus n={n}: batched/unbatched logs diverge")
        for metric in CONSENSUS_CELL_METRICS:
            diff = diff_metric(f"n={n}", metric, base_row.get(metric),
                               row.get(metric), tolerance)
            if diff is not None:
                errors += fail(f"consensus {diff}")
    return errors


def check_overload(fresh, min_admitted=0.95, max_queue=2048):
    errors = 0
    for key in ("valve_on_ok", "transparent_at_10x", "baseline_violates", "ok"):
        got = fresh.get("gates", {}).get(key)
        if got is not True:
            errors += fail(f"overload gate {key!r} is {got!r}, expected true")
    seen_on = 0
    for row in fresh.get("sweep", []):
        if not row.get("valve", False):
            continue  # valve-off rows are the melt baseline, not gated
        seen_on += 1
        cell = row.get("scenario", "?")
        admitted = row.get("admitted_availability", 0.0)
        depth = row.get("max_queue_depth", 0)
        if admitted < min_admitted:
            errors += fail(
                f"overload {cell}: admitted_availability {admitted:g} "
                f"< {min_admitted:g} with the valve on"
            )
        if depth > max_queue:
            errors += fail(
                f"overload {cell}: max_queue_depth {depth} > {max_queue} "
                f"with the valve on"
            )
    if seen_on == 0:
        errors += fail("overload sweep has no valve-on cells")
    return errors


EXPECTED_CONTROLLER_SCENARIOS = (
    "controller-crash-mid-intrusion",
    "controller-gc-pause",
    "controller-solver-failures",
    "controller-slow-solve-churn",
)

CONTROLLER_GATES = (
    "failsafe_availability_ok",
    "no_frozen_cycles",
    "fallback_engages",
    "policy_recovers",
    "baseline_degrades",
    "ok",
)


def check_controller(fresh):
    errors = 0
    if fresh.get("controller_gates_ok") is not True:
        errors += fail("controller sweep-level gate 'controller_gates_ok' "
                       f"is {fresh.get('controller_gates_ok')!r}")
    cells = {row.get("name"): row for row in fresh.get("scenarios", [])}
    missing = [n for n in EXPECTED_CONTROLLER_SCENARIOS if n not in cells]
    if missing:
        errors += fail(f"controller sweep missing scenarios: {missing}")
    for name, row in sorted(cells.items()):
        for key in CONTROLLER_GATES:
            got = row.get("gates", {}).get(key)
            if got is not True:
                errors += fail(
                    f"controller {name}: gate {key!r} is {got!r}, "
                    "expected true"
                )
        on = row.get("failsafe_on", {})
        if on.get("frozen_cycles", -1) != 0:
            errors += fail(
                f"controller {name}: failsafe-on run reports "
                f"{on.get('frozen_cycles')!r} frozen cycles, expected 0"
            )
        if on.get("policy_epoch", 0) < 2:
            errors += fail(
                f"controller {name}: failsafe-on policy epoch "
                f"{on.get('policy_epoch')!r} never advanced past the seed "
                "table"
            )
        if on.get("mode") != "fresh":
            errors += fail(
                f"controller {name}: failsafe-on horizon mode is "
                f"{on.get('mode')!r}, expected 'fresh' (the ladder must "
                "recover)"
            )
    return errors


EXPECTED_CHAOS_SCENARIOS = (
    "crash-restart-lossy",
    "corruption-storm",
    "targeted-drop-recovery",
)

CHAOS_GATES = (
    "recovery_ok",
    "convergence_ok",
    "zero_decode",
    "zero_handler",
    "corruption_exercised",
    "retry_exercised",
    "progress_ok",
    "ok",
)


def check_chaos(fresh):
    errors = 0
    if fresh.get("chaos_gates_ok") is not True:
        errors += fail("chaos sweep-level gate 'chaos_gates_ok' "
                       f"is {fresh.get('chaos_gates_ok')!r}")
    cells = {row.get("name"): row for row in fresh.get("scenarios", [])}
    missing = [n for n in EXPECTED_CHAOS_SCENARIOS if n not in cells]
    if missing:
        errors += fail(f"chaos battery missing scenarios: {missing}")
    for name, row in sorted(cells.items()):
        for key in CHAOS_GATES:
            got = row.get("gates", {}).get(key)
            if got is not True:
                errors += fail(
                    f"chaos {name}: gate {key!r} is {got!r}, expected true"
                )
        if row.get("stall_reports", -1) != 0:
            errors += fail(
                f"chaos {name}: watchdog reported "
                f"{row.get('stall_reports')!r} liveness stalls, expected 0"
            )
        worst = row.get("worst_recovery_seconds")
        bound = row.get("recovery_bound_seconds")
        if worst is None or bound is None:
            errors += fail(f"chaos {name}: missing recovery timing fields")
        elif worst > bound:
            errors += fail(
                f"chaos {name}: worst recovery {worst:g}s exceeds the "
                f"{bound:g}s bound"
            )
    return errors


def check_runtime(fresh):
    errors = 0
    gates = fresh.get("gates", {})
    for key in ("cells_ok", "logs_ok", "sim_equivalence_ok", "gain_ok",
                "wan_gain_ok", "ok"):
        if gates.get(key) is not True:
            errors += fail(f"runtime gate {key!r} is {gates.get(key)!r}")
    seen = set()
    for row in fresh.get("sweep", []):
        seen.add((row.get("profile"), row.get("n")))
        for side in ("baseline", "fast"):
            for counter in ("decode_errors", "handler_errors", "auth_failures"):
                value = row.get(f"{side}_{counter}", 0)
                if value:
                    errors += fail(
                        f"runtime {row.get('profile')} n={row.get('n')}: "
                        f"{side} {counter} = {value}"
                    )
        if not row.get("logs_valid", False):
            errors += fail(
                f"runtime {row.get('profile')} n={row.get('n')}: logs invalid"
            )
    missing = EXPECTED_RUNTIME_GRID - seen
    if missing:
        errors += fail(f"runtime sweep missing cells: {sorted(missing)}")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--consensus", help="fresh BENCH_consensus.json")
    ap.add_argument("--runtime", help="fresh BENCH_runtime.json")
    ap.add_argument("--overload", help="fresh BENCH_overload.json")
    ap.add_argument("--controller", help="fresh BENCH_controller.json")
    ap.add_argument("--chaos", help="fresh BENCH_chaos.json")
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="relative tolerance for deterministic metrics")
    args = ap.parse_args()
    if (not args.consensus and not args.runtime and not args.overload
            and not args.controller and not args.chaos):
        ap.error("nothing to check: pass --consensus, --runtime, "
                 "--overload, --controller and/or --chaos")

    errors = 0
    if args.consensus:
        with open(args.consensus) as f:
            fresh = json.load(f)
        with open(f"{args.baseline_dir}/BENCH_consensus.json") as f:
            baseline = json.load(f)
        errors += check_consensus(fresh, baseline, args.tolerance)
    if args.runtime:
        with open(args.runtime) as f:
            errors += check_runtime(json.load(f))
    if args.overload:
        with open(args.overload) as f:
            errors += check_overload(json.load(f))
    if args.controller:
        with open(args.controller) as f:
            errors += check_controller(json.load(f))
    if args.chaos:
        with open(args.chaos) as f:
            errors += check_chaos(json.load(f))

    if errors:
        print(f"check_bench: {errors} failure(s)")
        return 1
    print("check_bench: all gates and baselines OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
