"""Unit tests for check_bench.py's tolerance and gate logic.

Plain stdlib unittest so the suite runs both under CI's
`python3 -m pytest bench/` and locally via
`python3 -m unittest discover bench` on machines without pytest.
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_bench  # noqa: E402


def consensus_doc(gates=None, sweep=None):
    return {
        "gates": gates if gates is not None else {"speedup_ok": True},
        "sweep": sweep if sweep is not None else [],
    }


def cell(n, unbatched=1000.0, batched=3000.0, speedup=3.0, logs_match=True):
    return {
        "n": n,
        "unbatched_req_s": unbatched,
        "batched_req_s": batched,
        "speedup": speedup,
        "logs_match": logs_match,
    }


def overload_doc(**overrides):
    doc = {
        "gates": {
            "valve_on_ok": True,
            "transparent_at_10x": True,
            "baseline_violates": True,
            "ok": True,
        },
        "sweep": [
            {"scenario": "load-spike-100x", "valve": True,
             "admitted_availability": 1.0, "max_queue_depth": 134},
            {"scenario": "load-spike-100x", "valve": False,
             "admitted_availability": 0.39, "max_queue_depth": 1173845},
        ],
    }
    doc.update(overrides)
    return doc


class RelDriftTest(unittest.TestCase):
    def test_zero_drift(self):
        self.assertEqual(check_bench.rel_drift(100.0, 100.0), 0.0)

    def test_relative_not_absolute(self):
        self.assertAlmostEqual(check_bench.rel_drift(110.0, 100.0), 0.10)
        self.assertAlmostEqual(check_bench.rel_drift(1.1, 1.0), 0.10)

    def test_zero_baseline_does_not_divide_by_zero(self):
        self.assertGreater(check_bench.rel_drift(1.0, 0.0), 1.0)


class DiffMetricTest(unittest.TestCase):
    def test_within_tolerance_is_silent(self):
        self.assertIsNone(
            check_bench.diff_metric("n=7", "speedup", 3.0, 3.2, 0.10))

    def test_drift_names_cell_metric_and_values(self):
        diff = check_bench.diff_metric("n=7", "speedup", 3.0, 4.0, 0.10)
        self.assertIsNotNone(diff)
        for needle in ("n=7", "speedup", "baseline=3", "fresh=4", "drift="):
            self.assertIn(needle, diff)

    def test_missing_value_is_reported(self):
        diff = check_bench.diff_metric("n=7", "speedup", 3.0, None, 0.10)
        self.assertIn("missing", diff)


class CheckConsensusTest(unittest.TestCase):
    def test_identical_docs_pass(self):
        doc = consensus_doc(sweep=[cell(3), cell(7)])
        self.assertEqual(check_bench.check_consensus(doc, doc, 0.10), 0)

    def test_drift_within_tolerance_passes(self):
        base = consensus_doc(sweep=[cell(3)])
        fresh = consensus_doc(sweep=[cell(3, batched=3000.0 * 1.05)])
        self.assertEqual(check_bench.check_consensus(fresh, base, 0.10), 0)

    def test_drift_beyond_tolerance_fails(self):
        base = consensus_doc(sweep=[cell(3)])
        fresh = consensus_doc(sweep=[cell(3, batched=3000.0 * 1.25)])
        self.assertEqual(check_bench.check_consensus(fresh, base, 0.10), 1)

    def test_tolerance_is_symmetric(self):
        base = consensus_doc(sweep=[cell(3)])
        fresh = consensus_doc(sweep=[cell(3, batched=3000.0 * 0.75)])
        self.assertEqual(check_bench.check_consensus(fresh, base, 0.10), 1)

    def test_lost_cell_fails(self):
        base = consensus_doc(sweep=[cell(3), cell(7)])
        fresh = consensus_doc(sweep=[cell(3)])
        self.assertEqual(check_bench.check_consensus(fresh, base, 0.10), 1)

    def test_false_gate_fails(self):
        base = consensus_doc(gates={"speedup_ok": True})
        fresh = consensus_doc(gates={"speedup_ok": False})
        self.assertEqual(check_bench.check_consensus(fresh, base, 0.10), 1)

    def test_diverging_logs_fail(self):
        base = consensus_doc(sweep=[cell(3)])
        fresh = consensus_doc(sweep=[cell(3, logs_match=False)])
        self.assertEqual(check_bench.check_consensus(fresh, base, 0.10), 1)


def controller_cell(name, fault=True):
    rejected = 20 if name == "controller-solver-failures" else 0
    return {
        "name": name,
        "failsafe_on": {
            "availability": 0.994, "service_availability": 0.994,
            "worst_min_availability": 0.975, "policy_epoch": 9,
            "resolves": 32, "rejected": rejected, "hold_cycles": 32,
            "fallback_cycles": 80 if fault else 0, "frozen_cycles": 0,
            "max_staleness": 36, "mode": "fresh",
        },
        "failsafe_off": {
            "availability": 0.909, "service_availability": 0.872,
            "worst_min_availability": 0.600, "policy_epoch": 0,
            "resolves": 0, "rejected": 0, "hold_cycles": 0,
            "fallback_cycles": 0, "frozen_cycles": 120 if fault else 0,
            "max_staleness": 0, "mode": "inline",
        },
        "gates": {
            "failsafe_availability_ok": True, "no_frozen_cycles": True,
            "fallback_engages": True, "policy_recovers": True,
            "baseline_degrades": True, "ok": True,
        },
    }


def controller_doc(**overrides):
    doc = {
        "controller_gates_ok": True,
        "scenarios": [
            controller_cell("controller-crash-mid-intrusion"),
            controller_cell("controller-gc-pause"),
            controller_cell("controller-solver-failures"),
            controller_cell("controller-slow-solve-churn", fault=False),
        ],
    }
    doc.update(overrides)
    return doc


class CheckOverloadTest(unittest.TestCase):
    def test_healthy_sweep_passes(self):
        self.assertEqual(check_bench.check_overload(overload_doc()), 0)

    def test_false_gate_fails(self):
        doc = overload_doc()
        doc["gates"]["baseline_violates"] = False
        self.assertEqual(check_bench.check_overload(doc), 1)

    def test_valve_on_low_availability_fails(self):
        doc = overload_doc()
        doc["sweep"][0]["admitted_availability"] = 0.80
        self.assertEqual(check_bench.check_overload(doc), 1)

    def test_valve_on_unbounded_queue_fails(self):
        doc = overload_doc()
        doc["sweep"][0]["max_queue_depth"] = 4096
        self.assertEqual(check_bench.check_overload(doc), 1)

    def test_valve_off_melt_rows_are_not_gated(self):
        doc = overload_doc()
        doc["sweep"][1]["max_queue_depth"] = 10**7
        self.assertEqual(check_bench.check_overload(doc), 0)

    def test_empty_sweep_fails(self):
        self.assertEqual(check_bench.check_overload(overload_doc(sweep=[])), 1)


class CheckControllerTest(unittest.TestCase):
    def test_healthy_sweep_passes(self):
        self.assertEqual(check_bench.check_controller(controller_doc()), 0)

    def test_sweep_level_gate_false_fails(self):
        doc = controller_doc(controller_gates_ok=False)
        self.assertEqual(check_bench.check_controller(doc), 1)

    def test_missing_scenario_fails(self):
        doc = controller_doc()
        doc["scenarios"] = doc["scenarios"][:-1]  # drop slow-solve-churn
        self.assertEqual(check_bench.check_controller(doc), 1)

    def test_every_named_gate_is_checked(self):
        for gate in check_bench.CONTROLLER_GATES:
            doc = controller_doc()
            doc["scenarios"][0]["gates"][gate] = False
            self.assertEqual(
                check_bench.check_controller(doc), 1,
                f"flipping gate {gate!r} must fail the check")

    def test_frozen_cycles_with_failsafe_on_fails(self):
        doc = controller_doc()
        doc["scenarios"][1]["failsafe_on"]["frozen_cycles"] = 24
        self.assertEqual(check_bench.check_controller(doc), 1)

    def test_stuck_policy_epoch_fails(self):
        doc = controller_doc()
        doc["scenarios"][0]["failsafe_on"]["policy_epoch"] = 1
        self.assertEqual(check_bench.check_controller(doc), 1)

    def test_unrecovered_mode_fails(self):
        doc = controller_doc()
        doc["scenarios"][2]["failsafe_on"]["mode"] = "fallback"
        self.assertEqual(check_bench.check_controller(doc), 1)


def chaos_cell(name, restart=True):
    return {
        "name": name,
        "completed": 3514,
        "injected_corruptions": 115 if name == "corruption-storm" else 0,
        "st_retries": 10 if name == "targeted-drop-recovery" else 0,
        "stall_reports": 0,
        "worst_recovery_seconds": 0.257 if restart else 0.0,
        "recovery_bound_seconds": 3.0,
        "gates": {
            "recovery_ok": True, "convergence_ok": True,
            "zero_decode": True, "zero_handler": True,
            "corruption_exercised": True, "retry_exercised": True,
            "progress_ok": True, "ok": True,
        },
    }


def chaos_doc(**overrides):
    doc = {
        "chaos_gates_ok": True,
        "scenarios": [
            chaos_cell("crash-restart-lossy"),
            chaos_cell("corruption-storm", restart=False),
            chaos_cell("targeted-drop-recovery"),
        ],
    }
    doc.update(overrides)
    return doc


class CheckChaosTest(unittest.TestCase):
    def test_healthy_battery_passes(self):
        self.assertEqual(check_bench.check_chaos(chaos_doc()), 0)

    def test_sweep_level_gate_false_fails(self):
        doc = chaos_doc(chaos_gates_ok=False)
        self.assertEqual(check_bench.check_chaos(doc), 1)

    def test_missing_scenario_fails(self):
        doc = chaos_doc()
        doc["scenarios"] = doc["scenarios"][:-1]  # drop targeted-drop
        self.assertEqual(check_bench.check_chaos(doc), 1)

    def test_every_named_gate_is_checked(self):
        for gate in check_bench.CHAOS_GATES:
            doc = chaos_doc()
            doc["scenarios"][0]["gates"][gate] = False
            self.assertEqual(
                check_bench.check_chaos(doc), 1,
                f"flipping gate {gate!r} must fail the check")

    def test_watchdog_stalls_fail(self):
        doc = chaos_doc()
        doc["scenarios"][0]["stall_reports"] = 3
        self.assertEqual(check_bench.check_chaos(doc), 1)

    def test_recovery_beyond_bound_fails(self):
        doc = chaos_doc()
        doc["scenarios"][0]["worst_recovery_seconds"] = 3.5
        self.assertEqual(check_bench.check_chaos(doc), 1)

    def test_missing_recovery_fields_fail(self):
        doc = chaos_doc()
        del doc["scenarios"][0]["worst_recovery_seconds"]
        self.assertEqual(check_bench.check_chaos(doc), 1)


if __name__ == "__main__":
    unittest.main()
