// Table 2: solving Prob. 1 (optimal intrusion recovery) with Algorithm 1
// (CEM, DE, BO, SPSA) against the PPO and Incremental Pruning baselines, for
// DeltaR in {5, 15, 25, inf}.  Columns: compute time and average cost J_i.
//
// The paper's headline shape: the Thm.-1-based parameterizations (CEM/DE/BO)
// find near-optimal strategies for all DeltaR; SPSA with the Table 8 gains
// fails to converge; PPO lands slightly above; IP matches the optimum but
// its cost blows up with the horizon.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "tolerance/solvers/bayesopt.hpp"
#include "tolerance/solvers/cem.hpp"
#include "tolerance/solvers/de.hpp"
#include "tolerance/solvers/incremental_pruning.hpp"
#include "tolerance/solvers/objective.hpp"
#include "tolerance/solvers/ppo.hpp"
#include "tolerance/solvers/spsa.hpp"
#include "tolerance/stats/summary.hpp"
#include "tolerance/util/stopwatch.hpp"

namespace {

using namespace tolerance;

struct Cell {
  stats::MeanCi time_s;
  stats::MeanCi cost;
};

solvers::RecoveryObjective make_objective(const pomdp::NodeModel& model,
                                          const pomdp::ObservationModel& obs,
                                          int delta_r, std::uint64_t seed) {
  solvers::RecoveryObjective::Options opts;
  opts.episodes = 50;  // M, Table 8
  opts.horizon = delta_r > 0 ? std::max(100, 4 * delta_r) : 200;
  opts.seed = seed;
  return solvers::RecoveryObjective(model, obs, delta_r, opts);
}

Cell run_optimizer(const solvers::ParametricOptimizer& optimizer,
                   const pomdp::NodeModel& model,
                   const pomdp::ObservationModel& obs, int delta_r, int seeds,
                   long budget) {
  std::vector<double> times, costs;
  for (int seed = 0; seed < seeds; ++seed) {
    const auto objective =
        make_objective(model, obs, delta_r, 1000 + static_cast<std::uint64_t>(seed));
    Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
    Stopwatch clock;
    const auto result =
        optimizer.optimize(objective, objective.dimension(), budget, rng);
    times.push_back(clock.elapsed_seconds());
    // Re-evaluate the returned strategy on a fresh seed (honest estimate).
    const auto eval =
        make_objective(model, obs, delta_r, 9000 + static_cast<std::uint64_t>(seed));
    costs.push_back(eval(result.best_x));
  }
  return {stats::mean_ci(times), stats::mean_ci(costs)};
}

Cell run_ppo(const pomdp::NodeModel& model, const pomdp::ObservationModel& obs,
             int delta_r, int seeds, int iterations) {
  std::vector<double> times, costs;
  for (int seed = 0; seed < seeds; ++seed) {
    solvers::PpoSolver::Options opts;
    opts.iterations = iterations;
    opts.learning_rate = 3e-4;  // the Table 8 1e-5 needs hours; see README
    solvers::PpoSolver ppo(model, obs, delta_r, opts);
    Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);
    Stopwatch clock;
    ppo.train(rng);
    times.push_back(clock.elapsed_seconds());
    pomdp::NodeSimulator sim(model, obs);
    Rng eval_rng(4242 + static_cast<std::uint64_t>(seed));
    costs.push_back(
        sim.run_many(ppo.policy(), delta_r > 0 ? 4 * delta_r : 200, 50,
                     eval_rng)
            .avg_cost);
  }
  return {stats::mean_ci(times), stats::mean_ci(costs)};
}

Cell run_ip(const pomdp::NodeModel& model, const pomdp::ObservationModel& obs,
            int delta_r) {
  Stopwatch clock;
  solvers::IncrementalPruning::Result result;
  if (delta_r > 0) {
    result = solvers::IncrementalPruning::solve_cycle(model, obs, delta_r);
  } else {
    result = solvers::IncrementalPruning::solve_discounted(model, obs, 0.999,
                                                           1e-7, 20000);
  }
  Cell cell;
  cell.time_s.mean = clock.elapsed_seconds();
  cell.cost.mean = result.average_cost;
  return cell;
}

}  // namespace

int main() {
  using namespace tolerance;
  bench::header("Table 2 — solver comparison on Prob. 1", "Table 2");
  const pomdp::NodeModel model(bench::paper_node_params(0.1));
  const auto obs = bench::paper_observation_model();
  const int seeds = bench::scaled(3, 20);
  const long budget = bench::scaled(400, 2000);

  const std::vector<int> delta_rs{5, 15, 25, solvers::kNoBtr};
  auto dr_name = [](int dr) {
    return dr > 0 ? "dR=" + std::to_string(dr) : std::string("dR=inf");
  };

  ConsoleTable table({"Method", "dR", "Time (s)", "Cost Ji (5)"});
  const solvers::CrossEntropyMethod cem;
  const solvers::DifferentialEvolution de;
  const solvers::BayesianOptimization bo;
  const solvers::Spsa spsa;  // Table 8 gains: reproduces the failure

  for (int dr : delta_rs) {
    struct Named {
      std::string name;
      Cell cell;
    };
    std::vector<Named> rows;
    rows.push_back({"CEM", run_optimizer(cem, model, obs, dr, seeds, budget)});
    rows.push_back({"DE", run_optimizer(de, model, obs, dr, seeds, budget)});
    rows.push_back(
        {"BO", run_optimizer(bo, model, obs, dr, seeds,
                             std::min<long>(budget, bench::scaled(60, 150)))});
    rows.push_back(
        {"SPSA", run_optimizer(spsa, model, obs, dr, seeds, budget)});
    rows.push_back(
        {"PPO", run_ppo(model, obs, dr, seeds, bench::scaled(8, 40))});
    rows.push_back({"IP (optimal)", run_ip(model, obs, dr)});
    for (const auto& r : rows) {
      table.add_row({r.name, dr_name(dr),
                     ConsoleTable::mean_pm(r.cell.time_s.mean,
                                           r.cell.time_s.half_width, 2),
                     ConsoleTable::mean_pm(r.cell.cost.mean,
                                           r.cell.cost.half_width, 3)});
    }
  }
  table.print(std::cout);
  std::cout <<
      "\nExpected shape (Table 2): CEM/DE/BO match IP's optimal cost for "
      "every DeltaR;\nSPSA (Table 8 gains, c=10) lands above them; PPO is "
      "slightly worse than CEM/DE/BO;\nIP compute time grows steeply with "
      "DeltaR while Alg. 1 stays cheap.\n";
  return 0;
}
