// Fig. 14: the optimal recovery cost J* as a function of the intrusion
// detection model's quality.
//  Left panel:  sweep the true channel separation D_KL(Z(.|H) || Z(.|C)).
//  Right panel: model mismatch — the controller updates beliefs with a
//               corrupted estimate Z-hat while observations come from Z;
//               x-axis is D_KL(Z(.|C) || Z-hat(.|C)).
#include <iostream>

#include "bench_common.hpp"
#include "tolerance/pomdp/belief.hpp"
#include "tolerance/solvers/objective.hpp"
#include "tolerance/stats/empirical.hpp"

namespace {

using namespace tolerance;

// Best constant-threshold cost under (possibly mismatched) belief updates.
// The alpha grid shards across the runner; each grid point evaluates its
// episodes on Rng::stream children of a fixed base seed (common random
// numbers across alphas), so the minimum is thread-count invariant.
double best_threshold_cost(const pomdp::NodeModel& model,
                           const pomdp::ObservationModel& true_obs,
                           const pomdp::ObservationModel& believed_obs,
                           int episodes, const util::ParallelRunner& runner) {
  const pomdp::BeliefUpdater updater(model, believed_obs);
  std::vector<double> alphas;
  for (double a = 0.05; a <= 0.95; a += 0.05) alphas.push_back(a);
  const auto costs = runner.map<double>(
      static_cast<std::int64_t>(alphas.size()), [&](std::int64_t ai) {
    const double alpha = alphas[static_cast<std::size_t>(ai)];
    double total = 0.0;
    for (int e = 0; e < episodes; ++e) {
      Rng rng = Rng::stream(123, static_cast<std::uint64_t>(e));
      // Manual rollout: belief filtered through `believed_obs`.
      pomdp::NodeState s = rng.bernoulli(model.params().p_attack)
                               ? pomdp::NodeState::Compromised
                               : pomdp::NodeState::Healthy;
      double b = model.params().p_attack;
      const int horizon = 200;
      for (int t = 0; t < horizon; ++t) {
        const auto a = b >= alpha ? pomdp::NodeAction::Recover
                                  : pomdp::NodeAction::Wait;
        total += model.cost(s, a) / horizon;
        const double u = rng.uniform();
        const double to_crash =
            model.transition(s, a, pomdp::NodeState::Crashed);
        const double to_h = model.transition(s, a, pomdp::NodeState::Healthy);
        if (u < to_crash) {
          s = rng.bernoulli(model.params().p_attack)
                  ? pomdp::NodeState::Compromised
                  : pomdp::NodeState::Healthy;
          b = model.params().p_attack;
          continue;
        }
        s = u < to_crash + to_h ? pomdp::NodeState::Healthy
                                : pomdp::NodeState::Compromised;
        const int o =
            true_obs.sample(s == pomdp::NodeState::Compromised, rng);
        b = updater.update(b, a, o);
      }
    }
    return total / episodes;
  });
  double best = 1e18;
  for (const double c : costs) best = std::min(best, c);
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tolerance;
  bench::header("Fig. 14 — optimal cost vs detector quality", "Fig. 14");
  const int threads = bench::parse_threads(argc, argv);
  bench::print_threads(threads);
  const util::ParallelRunner runner(threads);
  const pomdp::NodeModel model(bench::paper_node_params(0.1));
  const int episodes = bench::scaled(60, 300);

  std::cout << "left panel: sweep the channel separation (beta_C of "
               "Z(.|C) = BetaBin(10, 1, beta_C)):\n";
  ConsoleTable left({"DKL(Z(.|H)||Z(.|C))", "J*"});
  for (double beta_c : {3.0, 2.0, 1.4, 1.0, 0.7, 0.4}) {
    const pomdp::BetaBinObservationModel obs(
        stats::BetaBinomial(10, 0.7, 3.0), stats::BetaBinomial(10, 1.0, beta_c));
    const double kl = obs.kl(false, true);
    const double cost = best_threshold_cost(model, obs, obs, episodes, runner);
    left.add_row({ConsoleTable::num(kl, 2), ConsoleTable::num(cost, 3)});
  }
  left.print(std::cout);

  std::cout << "\nright panel: model mismatch — Z-hat(.|C) drifts towards "
               "Z(.|H) with weight rho\n(the detector increasingly mistakes "
               "intrusion traffic for background noise):\n";
  ConsoleTable right({"rho", "DKL(Z(.|C)||Zhat(.|C))", "J*"});
  const auto truth = bench::paper_observation_model();
  for (double rho : {0.0, 0.2, 0.4, 0.6, 0.8, 0.95}) {
    // Corrupt the compromised-state pmf towards the healthy one.
    auto pmf_c = truth.pmf(true);
    const auto pmf_h = truth.pmf(false);
    for (std::size_t i = 0; i < pmf_c.size(); ++i) {
      pmf_c[i] = (1.0 - rho) * pmf_c[i] + rho * pmf_h[i];
    }
    std::vector<std::int64_t> counts;
    for (double p : pmf_c) {
      counts.push_back(static_cast<std::int64_t>(p * 1e6));
    }
    const pomdp::EmpiricalObservationModel believed(
        stats::EmpiricalPmf::from_counts(
            [&] {
              std::vector<std::int64_t> h;
              for (double p : truth.pmf(false)) {
                h.push_back(static_cast<std::int64_t>(p * 1e6));
              }
              return h;
            }(),
            1.0),
        stats::EmpiricalPmf::from_counts(counts, 1.0));
    const double kl =
        stats::kl_divergence(truth.pmf(true), believed.pmf(true));
    const double cost =
        best_threshold_cost(model, truth, believed, episodes, runner);
    right.add_row({ConsoleTable::num(rho, 2), ConsoleTable::num(kl, 3),
                   ConsoleTable::num(cost, 3)});
  }
  right.print(std::cout);
  std::cout << "\nExpected shape (Fig. 14): J* decreases as the channel "
               "separation grows (left);\nJ* increases as the controller's "
               "model drifts from the truth (right).\n";
  return 0;
}
