// Fig. 4: the optimal value function V*(b) of Prob. 1 with its alpha-vectors
// (pA = 0.01, pU = 2e-2, DeltaR = 100, Table 8), computed exactly with
// Incremental Pruning.  Prints the first-stage alpha-vector set and the
// lower envelope on a belief grid.
#include <iostream>

#include "bench_common.hpp"
#include "tolerance/solvers/incremental_pruning.hpp"

int main() {
  using namespace tolerance;
  bench::header("Fig. 4 — optimal value function and alpha-vectors", "Fig. 4");
  const pomdp::NodeModel model(bench::paper_node_params(0.01));
  const auto obs = bench::paper_observation_model();
  const auto result = solvers::IncrementalPruning::solve_cycle(model, obs, 100);
  const auto& v1 = result.value_functions[0];

  std::cout << "alpha-vectors of V*_1 (" << v1.size() << " kept after "
            << "pruning):\n";
  ConsoleTable alphas({"#", "value at b=0 (H)", "value at b=1 (C)", "action"});
  for (std::size_t i = 0; i < v1.size(); ++i) {
    alphas.add_row({std::to_string(i), ConsoleTable::num(v1[i].v_healthy, 4),
                    ConsoleTable::num(v1[i].v_compromised, 4),
                    v1[i].action == pomdp::NodeAction::Recover ? "R" : "W"});
  }
  alphas.print(std::cout);

  std::cout << "\nV*(b) on a belief grid (lower envelope):\n";
  ConsoleTable env({"b", "V*(b)", "argmin action"});
  for (int g = 0; g <= 10; ++g) {
    const double b = g / 10.0;
    env.add_row({ConsoleTable::num(b, 1),
                 ConsoleTable::num(solvers::envelope_value(v1, b), 4),
                 solvers::envelope_action(v1, b) == pomdp::NodeAction::Recover
                     ? "R"
                     : "W"});
  }
  env.print(std::cout);
  std::cout << "\nExpected shape: piecewise-linear concave envelope; Wait "
               "below the threshold belief, Recover above (Thm. 1).\n";
  return 0;
}
