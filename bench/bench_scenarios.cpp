// Scenario churn sweep: runs every scenario in the catalog through the
// closed-loop ScenarioRunner (CMDP policy driving the live MinBFT cluster)
// over a seed sweep, prints the fig-style table — availability, end-to-end
// service availability, T(R), and the membership churn rate — and writes a
// BENCH_scenarios.json artifact (CI uploads it each run).
//
// Flags:
//   --threads N    parallel worker count (default: TOLERANCE_THREADS or
//                  hardware concurrency)
//   --seeds M      episodes per scenario (default: 4, or 16 at
//                  TOLERANCE_BENCH_FULL=1)
//   --out PATH     artifact path (default: BENCH_scenarios.json)
// Exits non-zero if any scenario's episode stats are not bit-identical
// between the serial and the parallel run.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "tolerance/emulation/scenario_runner.hpp"
#include "tolerance/util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace tolerance;
  bench::header("Scenario library — closed-loop churn sweep",
                "the §VIII two-level evaluation, generalized to the named "
                "adversarial scenarios");
  const int threads = bench::parse_threads(argc, argv);
  bench::print_threads(threads);

  int num_seeds = bench::scaled(4, 16);
  std::string out_path = "BENCH_scenarios.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seeds" && i + 1 < argc) num_seeds = std::atoi(argv[i + 1]);
    if (arg == "--out" && i + 1 < argc) out_path = argv[i + 1];
  }
  if (num_seeds <= 0) num_seeds = 4;
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < num_seeds; ++i) {
    seeds.push_back(1000 + static_cast<std::uint64_t>(i));
  }

  ConsoleTable table({"scenario", "T(A)", "svc(A)", "adm(A)", "qmax", "T(R)",
                      "churn/cycle", "stalls", "minM", "ep", "stale", "mode",
                      "seconds"});
  std::ofstream out(out_path);
  out << "{\n  \"bench\": \"scenarios\",\n  \"seeds\": " << num_seeds
      << ",\n  \"threads\": " << threads << ",\n  \"scenarios\": [\n";

  bool identical_everywhere = true;
  bool all_gates_ok = true;
  bool first = true;
  double total_seconds = 0.0;
  for (const auto& scenario : emulation::scenario_catalog()) {
    const auto runner = emulation::make_scenario_runner(scenario, 42);
    Stopwatch clock;
    const auto results = runner.run_many(seeds, threads);
    const double seconds = clock.elapsed_seconds();
    total_seconds += seconds;
    // Bit-identical determinism check against the serial schedule, on the
    // first episode (full per-episode equality, including the trace).
    const auto serial_first = runner.run(seeds.front());
    const bool identical =
        emulation::identical(results.front(), serial_first);
    identical_everywhere = identical_everywhere && identical;

    double availability = 0.0;
    double service = 0.0;
    double admitted = 0.0;
    double ttr = 0.0;
    double churn = 0.0;
    long stalls = 0;
    int min_membership = scenario.max_nodes;
    int max_queue = 0;
    std::uint64_t policy_epoch = 0;
    int max_staleness = 0;
    for (const auto& r : results) {
      availability += r.availability;
      service += r.service_availability;
      admitted += r.admitted_availability;
      ttr += r.time_to_recovery;
      churn += static_cast<double>(r.recoveries + r.evictions + r.additions) /
               scenario.horizon;
      stalls += r.quorum_stalls;
      min_membership = std::min(min_membership, r.min_membership);
      max_queue = std::max(max_queue, r.max_queue_depth);
      policy_epoch = std::max(policy_epoch, r.policy_epoch);
      max_staleness = std::max(max_staleness, r.controller_max_staleness);
    }
    // Horizon-end controller mode — identical across episodes of the async
    // scenarios in the catalog (the fault scripts, not the seeds, drive the
    // ladder), so report the first episode's.
    const std::string& mode = results.front().controller_mode;
    const auto n = static_cast<double>(results.size());
    availability /= n;
    service /= n;
    admitted /= n;
    ttr /= n;
    churn /= n;

    // Overload gates, CI-enforced via the exit code: flood scenarios run
    // with the admission valve on, and the valve's contract is (a) every
    // admitted request completes and (b) queues stay bounded.  The no-valve
    // baseline violates both by orders of magnitude (see the ScenarioOverload
    // tests); a regression here means the valve stopped earning its keep.
    const bool flood = emulation::has_flood_events(scenario);
    const bool gates_ok =
        !flood || (admitted >= 0.95 && max_queue <= 2048);
    all_gates_ok = all_gates_ok && gates_ok;

    table.add_row({scenario.name, ConsoleTable::num(availability, 3),
                   ConsoleTable::num(service, 3),
                   flood ? ConsoleTable::num(admitted, 3) : std::string("-"),
                   flood ? std::to_string(max_queue) : std::string("-"),
                   ConsoleTable::num(ttr, 2), ConsoleTable::num(churn, 3),
                   std::to_string(stalls), std::to_string(min_membership),
                   std::to_string(policy_epoch), std::to_string(max_staleness),
                   mode, ConsoleTable::num(seconds, 2)});

    if (!first) out << ",\n";
    first = false;
    out << "    {\"name\": \"" << scenario.name << "\", \"availability\": "
        << availability << ", \"service_availability\": " << service
        << ", \"admitted_availability\": " << admitted
        << ", \"max_queue_depth\": " << max_queue
        << ", \"overload_gates_ok\": " << (gates_ok ? "true" : "false")
        << ", \"time_to_recovery\": " << ttr << ", \"churn_per_cycle\": "
        << churn << ", \"quorum_stalls\": " << stalls
        << ", \"min_membership\": " << min_membership
        << ", \"policy_epoch\": " << policy_epoch
        << ", \"controller_max_staleness\": " << max_staleness
        << ", \"controller_mode\": \"" << mode << "\", \"seconds\": "
        << seconds << ", \"bit_identical\": "
        << (identical ? "true" : "false") << "}";
  }
  out << "\n  ],\n  \"seconds_total\": " << total_seconds
      << ",\n  \"overload_gates_ok\": " << (all_gates_ok ? "true" : "false")
      << ",\n  \"bit_identical\": "
      << (identical_everywhere ? "true" : "false") << "\n}\n";

  table.print(std::cout);
  std::cout << "\nbit-identical parallel vs serial episodes: "
            << (identical_everywhere ? "YES" : "NO — BUG") << '\n'
            << "overload gates (adm >= 0.95, qmax <= 2048 on floods): "
            << (all_gates_ok ? "PASS" : "FAIL") << '\n'
            << "wrote " << out_path << '\n';
  return identical_everywhere && all_gates_ok ? 0 : 1;
}
