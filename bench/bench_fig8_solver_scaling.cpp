// Fig. 8: mean compute time to solve Prob. 1 versus DeltaR per algorithm.
// The paper's shape: Incremental Pruning's time explodes with DeltaR (it is
// exact DP over a growing horizon) while the Alg. 1 optimizers grow mildly.
#include <iostream>

#include "bench_common.hpp"
#include "tolerance/solvers/bayesopt.hpp"
#include "tolerance/solvers/cem.hpp"
#include "tolerance/solvers/de.hpp"
#include "tolerance/solvers/incremental_pruning.hpp"
#include "tolerance/solvers/objective.hpp"
#include "tolerance/solvers/spsa.hpp"
#include "tolerance/util/stopwatch.hpp"

int main() {
  using namespace tolerance;
  bench::header("Fig. 8 — compute time vs DeltaR", "Fig. 8");
  const pomdp::NodeModel model(bench::paper_node_params(0.1));
  const auto obs = bench::paper_observation_model();
  const long budget = bench::scaled(300, 2000);

  ConsoleTable table({"dR", "CEM (s)", "DE (s)", "BO (s)", "SPSA (s)",
                      "IP (s)"});
  for (int dr : {5, 10, 15, 20, 25}) {
    solvers::RecoveryObjective::Options opts;
    opts.episodes = 50;
    opts.horizon = std::max(100, 4 * dr);
    opts.seed = 3;
    const solvers::RecoveryObjective objective(model, obs, dr, opts);
    std::vector<std::string> row{std::to_string(dr)};
    const solvers::CrossEntropyMethod cem;
    const solvers::DifferentialEvolution de;
    const solvers::BayesianOptimization bo;
    const solvers::Spsa spsa;
    const std::vector<const solvers::ParametricOptimizer*> opts_list{
        &cem, &de, &bo, &spsa};
    for (const auto* opt : opts_list) {
      Rng rng(17);
      Stopwatch clock;
      const long b = opt->name() == "bo" ? std::min<long>(budget, 50) : budget;
      opt->optimize(objective, objective.dimension(), b, rng);
      row.push_back(ConsoleTable::num(clock.elapsed_seconds(), 2));
    }
    Stopwatch ip_clock;
    solvers::IncrementalPruning::solve_cycle(model, obs, dr);
    row.push_back(ConsoleTable::num(ip_clock.elapsed_seconds(), 3));
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: IP time grows superlinearly with DeltaR; "
               "the Alg. 1 optimizers scale mildly\n(their per-evaluation "
               "cost grows only linearly in the simulated horizon).\n";
  return 0;
}
