// Hot-path microbenchmarks (google-benchmark): belief updates, crypto
// primitives, simplex solves, IP backups, simulator steps, consensus rounds.
#include <benchmark/benchmark.h>

#include "tolerance/consensus/minbft_cluster.hpp"
#include "tolerance/crypto/hmac.hpp"
#include "tolerance/crypto/sha256.hpp"
#include "tolerance/crypto/usig.hpp"
#include "tolerance/emulation/testbed.hpp"
#include "tolerance/pomdp/belief.hpp"
#include "tolerance/solvers/cmdp_lp.hpp"
#include "tolerance/solvers/incremental_pruning.hpp"

namespace {

using namespace tolerance;

pomdp::NodeParams params() {
  pomdp::NodeParams p;
  p.p_attack = 0.1;
  p.p_crash_healthy = 1e-5;
  p.p_crash_compromised = 1e-3;
  p.p_update = 2e-2;
  return p;
}

void BM_BeliefUpdate(benchmark::State& state) {
  const pomdp::NodeModel model(params());
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  const pomdp::BeliefUpdater updater(model, obs);
  double b = 0.1;
  int o = 0;
  for (auto _ : state) {
    b = updater.update(b, pomdp::NodeAction::Wait, o);
    o = (o + 3) % 11;
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_BeliefUpdate);

void BM_Sha256_1KiB(benchmark::State& state) {
  const std::string data(1024, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_HmacSign(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256("key", "a service request"));
  }
}
BENCHMARK(BM_HmacSign);

void BM_UsigCreateVerify(benchmark::State& state) {
  auto registry = std::make_shared<crypto::KeyRegistry>();
  const std::string secret =
      registry->register_principal(1 + crypto::kUsigPrincipalOffset, 7);
  crypto::Usig usig(1, secret);
  const auto digest = crypto::Sha256::hash("op");
  for (auto _ : state) {
    const auto ui = usig.create(digest);
    benchmark::DoNotOptimize(crypto::Usig::verify(*registry, digest, ui));
  }
}
BENCHMARK(BM_UsigCreateVerify);

void BM_ReplicationLp(benchmark::State& state) {
  const auto cmdp = pomdp::SystemCmdp::parametric(
      static_cast<int>(state.range(0)), 3, 0.9, 0.95, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solvers::solve_replication_lp(cmdp));
  }
}
BENCHMARK(BM_ReplicationLp)->Arg(16)->Arg(64);

void BM_IncrementalPruningCycle(benchmark::State& state) {
  const pomdp::NodeModel model(params());
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  for (auto _ : state) {
    benchmark::DoNotOptimize(solvers::IncrementalPruning::solve_cycle(
        model, obs, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_IncrementalPruningCycle)->Arg(5)->Arg(25);

void BM_TestbedStep(benchmark::State& state) {
  emulation::TestbedConfig config;
  config.initial_nodes = 9;
  emulation::Testbed testbed(config, 3);
  for (auto _ : state) {
    testbed.step();
    benchmark::DoNotOptimize(testbed.failed_count());
  }
}
BENCHMARK(BM_TestbedStep);

// The digest-memo satellite: a PREPARE body digest is computed once and
// served from the memo afterwards.  `sha256_runs` counts actual SHA-256
// finalizations per iteration — ~0 for the memoized path, batch+2 for the
// fresh path (the work every sign/verify/conflict check used to redo).
consensus::Prepare sample_prepare(int batch) {
  consensus::Prepare p;
  p.view = 3;
  p.seq = 41;
  for (int i = 0; i < batch; ++i) {
    consensus::Request r;
    r.client = 10000;
    r.request_id = static_cast<std::uint64_t>(i);
    r.operation = "write:key" + std::to_string(i);
    p.requests.push_back(std::move(r));
  }
  return p;
}

void BM_PrepareDigestMemoized(benchmark::State& state) {
  const auto p = sample_prepare(static_cast<int>(state.range(0)));
  (void)p.body_digest();  // warm the memo
  const std::uint64_t before = crypto::Sha256::invocations();
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.body_digest());
  }
  state.counters["sha256_runs"] = benchmark::Counter(
      static_cast<double>(crypto::Sha256::invocations() - before),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_PrepareDigestMemoized)->Arg(1)->Arg(16);

void BM_PrepareDigestFresh(benchmark::State& state) {
  auto p = sample_prepare(static_cast<int>(state.range(0)));
  const std::uint64_t before = crypto::Sha256::invocations();
  for (auto _ : state) {
    p.invalidate_digests();  // what every call paid before memoization
    benchmark::DoNotOptimize(p.body_digest());
  }
  state.counters["sha256_runs"] = benchmark::Counter(
      static_cast<double>(crypto::Sha256::invocations() - before),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_PrepareDigestFresh)->Arg(1)->Arg(16);

void BM_MinBftRequestRound(benchmark::State& state) {
  consensus::MinBftConfig cfg;
  cfg.f = 1;
  net::LinkConfig link;
  link.loss = 0.0;
  link.jitter = 0.0;
  consensus::MinBftCluster cluster(3, cfg, 5, link);
  auto& client = cluster.add_client();
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster.submit_and_run(client, "op" + std::to_string(i++)));
  }
}
BENCHMARK(BM_MinBftRequestRound);

}  // namespace

BENCHMARK_MAIN();
