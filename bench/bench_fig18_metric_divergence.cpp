// Fig. 18 (Appendix H): KL divergence between the intrusion and no-intrusion
// distributions of each candidate metric.  The IDS alert metric carries the
// most information — which is why TOLERANCE's node controllers consume it.
#include <iostream>

#include "bench_common.hpp"
#include "tolerance/emulation/ids.hpp"
#include "tolerance/stats/empirical.hpp"

int main() {
  using namespace tolerance;
  using emulation::kMetricNames;
  using emulation::kNumMetrics;
  bench::header("Fig. 18 — per-metric KL divergence", "Fig. 18 / Appendix H");
  const int samples = bench::scaled(20000, 100000);
  Rng rng(5);

  std::vector<std::vector<double>> healthy(kNumMetrics), intrusion(kNumMetrics);
  for (const auto& profile : emulation::container_catalog()) {
    const emulation::IdsModel ids(profile);
    for (int i = 0; i < samples / 10; ++i) {
      const auto sh = ids.sample(nullptr, false, 8.0, rng);
      const bool during = rng.bernoulli(0.5);
      const emulation::IntrusionStep* step =
          during ? &profile.intrusion_steps[static_cast<std::size_t>(
                       rng.uniform_int(static_cast<int>(
                           profile.intrusion_steps.size())))]
                 : nullptr;
      const auto sc = ids.sample(step, !during, 8.0, rng);
      for (int m = 0; m < kNumMetrics; ++m) {
        healthy[static_cast<std::size_t>(m)].push_back(
            emulation::metric_value(sh, m));
        intrusion[static_cast<std::size_t>(m)].push_back(
            emulation::metric_value(sc, m));
      }
    }
  }

  ConsoleTable table({"metric", "KL(no-intrusion || intrusion)"});
  for (int m = 0; m < kNumMetrics; ++m) {
    std::vector<double> pooled = healthy[static_cast<std::size_t>(m)];
    pooled.insert(pooled.end(), intrusion[static_cast<std::size_t>(m)].begin(),
                  intrusion[static_cast<std::size_t>(m)].end());
    const auto binner = stats::QuantileBinner::fit(std::move(pooled), 25);
    std::vector<int> hb, cb;
    for (double v : healthy[static_cast<std::size_t>(m)]) {
      hb.push_back(binner.bin(v));
    }
    for (double v : intrusion[static_cast<std::size_t>(m)]) {
      cb.push_back(binner.bin(v));
    }
    const auto ph =
        stats::EmpiricalPmf::from_samples(hb, binner.num_bins(), 0.5);
    const auto pc =
        stats::EmpiricalPmf::from_samples(cb, binner.num_bins(), 0.5);
    table.add_row({kMetricNames[m],
                   ConsoleTable::num(stats::kl_divergence(ph, pc), 3)});
  }
  table.print(std::cout);
  std::cout << "\nExpected ordering (Fig. 18): alerts (~0.49) >> blocks "
               "written (~0.12) > failed logins (~0.07)\n> processes ~ tcp "
               "(~0.01) > blocks read (~0).\n";
  return 0;
}
