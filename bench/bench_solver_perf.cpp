// Solver-performance bench: the two solver hot paths of the paper pipeline,
// measured against their pre-overhaul baselines and written to
// BENCH_solvers.json (CI uploads it next to BENCH_parallel.json /
// BENCH_scenarios.json so the perf trajectory has solver datapoints).
//
//  * Fig. 9 column — the occupancy-measure LP of Algorithm 2 at the largest
//    smax: the legacy dense two-phase tableau solved from scratch versus the
//    sparse revised simplex, cold (policy crash basis) and warm (re-solve
//    from the previous optimal basis, the ScenarioRunner / epsilon_A-sweep /
//    baseline Monte-Carlo workload).
//  * Fig. 8 IP column — IncrementalPruning::solve_cycle at DeltaR = 25:
//    the pre-overhaul enumerate-and-prune backup versus the breakpoint-merge
//    backup.
//
// Exits non-zero if the optimized paths disagree with the baselines
// (objectives beyond 1e-6 relative, envelopes beyond 1e-9).
//
// Flags: --out PATH (default BENCH_solvers.json); TOLERANCE_BENCH_FULL=1
// runs smax = 2048 (the paper's Fig. 9 end point) instead of 512.
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "tolerance/solvers/cmdp_lp.hpp"
#include "tolerance/solvers/incremental_pruning.hpp"
#include "tolerance/util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace tolerance;
  bench::header("Solver perf — revised simplex + merge-backup IP vs baselines",
                "Fig. 8 / Fig. 9 solver columns");
  std::string out_path = "BENCH_solvers.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) out_path = argv[i + 1];
  }

  // --- Fig. 9: Algorithm 2 LP ---------------------------------------------
  const int smax = bench::scaled(512, 2048);
  const auto cmdp = pomdp::SystemCmdp::parametric(smax, 3, 0.9, 0.95, 0.3,
                                                  1e-4);
  lp::SimplexSolver::Options dense_options;
  dense_options.dense_fallback = true;

  Stopwatch clock;
  const auto dense = solvers::solve_replication_lp(cmdp, dense_options);
  const double t_dense = clock.elapsed_seconds();

  // Pre-Markowitz reinversion (static ascending-nnz Gauss-Jordan order):
  // the before/after datapoint for the fill-reduction lever.
  lp::SimplexSolver::Options static_order;
  static_order.markowitz_reinversion = false;
  clock.reset();
  const auto cold_static = solvers::solve_replication_lp(cmdp, static_order);
  const double t_cold_static = clock.elapsed_seconds();

  clock.reset();
  const auto cold = solvers::solve_replication_lp(cmdp);
  const double t_cold = clock.elapsed_seconds();

  clock.reset();
  const auto warm = solvers::solve_replication_lp(cmdp, {}, &cold.basis);
  const double t_warm = clock.elapsed_seconds();

  // The re-solve-after-model-drift workload: the control loop re-estimates
  // the kernel, the optimum moves a little, the old basis still pays off.
  const auto drifted = pomdp::SystemCmdp::parametric(smax, 3, 0.9, 0.945,
                                                     0.31, 1e-4);
  clock.reset();
  const auto drift_sol =
      solvers::solve_replication_lp(drifted, {}, &cold.basis);
  const double t_warm_drift = clock.elapsed_seconds();
  // Gate the drifted warm solve against its own cold baseline: this is the
  // path where a stale basis could silently produce a wrong "optimum".
  const auto drift_cold = solvers::solve_replication_lp(drifted);

  const bool lp_ok =
      dense.status == lp::LpStatus::Optimal &&
      cold_static.status == lp::LpStatus::Optimal &&
      cold.status == lp::LpStatus::Optimal &&
      warm.status == lp::LpStatus::Optimal &&
      drift_sol.status == lp::LpStatus::Optimal &&
      drift_cold.status == lp::LpStatus::Optimal &&
      std::fabs(cold.average_cost - dense.average_cost) <=
          1e-6 * (1.0 + dense.average_cost) &&
      std::fabs(cold_static.average_cost - dense.average_cost) <=
          1e-6 * (1.0 + dense.average_cost) &&
      std::fabs(warm.average_cost - dense.average_cost) <=
          1e-6 * (1.0 + dense.average_cost) &&
      std::fabs(drift_sol.average_cost - drift_cold.average_cost) <=
          1e-6 * (1.0 + drift_cold.average_cost);
  const double lp_cold_static_speedup = t_dense / std::max(t_cold_static, 1e-9);
  const double lp_cold_speedup = t_dense / std::max(t_cold, 1e-9);
  const double lp_warm_speedup = t_dense / std::max(t_warm, 1e-9);

  ConsoleTable lp_table({"fig9 smax", "path", "time (s)", "pivots", "eta nnz",
                         "E[s]", "speedup vs dense/scratch"});
  lp_table.add_row({std::to_string(smax), "dense scratch",
                    ConsoleTable::num(t_dense, 3),
                    std::to_string(dense.lp_iterations), "-",
                    ConsoleTable::num(dense.average_cost, 2), "1.00"});
  lp_table.add_row({"", "cold, static order",
                    ConsoleTable::num(t_cold_static, 3),
                    std::to_string(cold_static.lp_iterations),
                    std::to_string(cold_static.lp_eta_nnz),
                    ConsoleTable::num(cold_static.average_cost, 2),
                    ConsoleTable::num(lp_cold_static_speedup, 2)});
  lp_table.add_row({"", "cold, Markowitz LU", ConsoleTable::num(t_cold, 3),
                    std::to_string(cold.lp_iterations),
                    std::to_string(cold.lp_eta_nnz),
                    ConsoleTable::num(cold.average_cost, 2),
                    ConsoleTable::num(lp_cold_speedup, 2)});
  lp_table.add_row({"", "revised warm", ConsoleTable::num(t_warm, 3),
                    std::to_string(warm.lp_iterations),
                    std::to_string(warm.lp_eta_nnz),
                    ConsoleTable::num(warm.average_cost, 2),
                    ConsoleTable::num(lp_warm_speedup, 2)});
  lp_table.print(std::cout);

  // --- Fig. 8: IncrementalPruning at DeltaR = 25 ---------------------------
  const int delta_r = 25;
  const pomdp::NodeModel model(bench::paper_node_params(0.1));
  const auto obs = bench::paper_observation_model();

  solvers::IpOptions reference;
  reference.reference_backup = true;
  clock.reset();
  const auto ip_ref =
      solvers::IncrementalPruning::solve_cycle(model, obs, delta_r, reference);
  const double t_ip_ref = clock.elapsed_seconds();

  clock.reset();
  const auto ip_fast =
      solvers::IncrementalPruning::solve_cycle(model, obs, delta_r);
  const double t_ip_fast = clock.elapsed_seconds();

  double ip_envelope_diff = 0.0;
  for (int g = 0; g <= 512; ++g) {
    const double b = g / 512.0;
    ip_envelope_diff = std::max(
        ip_envelope_diff,
        std::fabs(solvers::envelope_value(ip_ref.value_functions[0], b) -
                  solvers::envelope_value(ip_fast.value_functions[0], b)));
  }
  const bool ip_ok = ip_envelope_diff <= 1e-9;
  const double ip_speedup = t_ip_ref / std::max(t_ip_fast, 1e-9);

  ConsoleTable ip_table({"fig8 dR", "path", "time (s)", "avg cost",
                         "speedup vs reference"});
  ip_table.add_row({std::to_string(delta_r), "reference backup",
                    ConsoleTable::num(t_ip_ref, 4),
                    ConsoleTable::num(ip_ref.average_cost, 4), "1.00"});
  ip_table.add_row({"", "merge backup", ConsoleTable::num(t_ip_fast, 4),
                    ConsoleTable::num(ip_fast.average_cost, 4),
                    ConsoleTable::num(ip_speedup, 2)});
  ip_table.print(std::cout);

  std::cout << "\nLP optima match: " << (lp_ok ? "YES" : "NO — BUG")
            << "   IP envelopes match (max diff " << ip_envelope_diff
            << "): " << (ip_ok ? "YES" : "NO — BUG") << '\n';

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"solver_perf\",\n"
      << "  \"fig9_lp\": {\n"
      << "    \"smax\": " << smax << ",\n"
      << "    \"seconds_dense_scratch\": " << t_dense << ",\n"
      << "    \"pivots_dense\": " << dense.lp_iterations << ",\n"
      << "    \"seconds_revised_cold_static_order\": " << t_cold_static
      << ",\n"
      << "    \"eta_nnz_static_order\": " << cold_static.lp_eta_nnz << ",\n"
      << "    \"seconds_revised_cold\": " << t_cold << ",\n"
      << "    \"eta_nnz_markowitz\": " << cold.lp_eta_nnz << ",\n"
      << "    \"pivots_revised_cold\": " << cold.lp_iterations << ",\n"
      << "    \"seconds_revised_warm\": " << t_warm << ",\n"
      << "    \"seconds_warm_kernel_drift\": " << t_warm_drift << ",\n"
      << "    \"cold_speedup_static_order\": " << lp_cold_static_speedup
      << ",\n"
      << "    \"cold_speedup\": " << lp_cold_speedup << ",\n"
      << "    \"warm_speedup\": " << lp_warm_speedup << ",\n"
      << "    \"optima_match\": " << (lp_ok ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"fig8_ip\": {\n"
      << "    \"delta_r\": " << delta_r << ",\n"
      << "    \"seconds_reference\": " << t_ip_ref << ",\n"
      << "    \"seconds_merge_backup\": " << t_ip_fast << ",\n"
      << "    \"speedup\": " << ip_speedup << ",\n"
      << "    \"max_envelope_diff\": " << ip_envelope_diff << ",\n"
      << "    \"envelopes_match\": " << (ip_ok ? "true" : "false") << "\n"
      << "  }\n"
      << "}\n";
  std::cout << "wrote " << out_path << '\n';
  return lp_ok && ip_ok ? 0 : 1;
}
