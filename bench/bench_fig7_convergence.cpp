// Fig. 7: convergence curves of Algorithm 1 for Prob. 1 — best cost so far
// versus wall-clock time for CEM, DE, BO and SPSA, per DeltaR.
//
// The optimizers run one at a time — each method's wall-clock axis IS the
// figure's output, so co-scheduling them would corrupt the comparison.
// The parallelism lives inside the Monte-Carlo objective instead
// (Options::threads): every method gets the whole machine for its episode
// sweeps, which speeds the bench up without skewing any method's clock.
#include <iostream>

#include "bench_common.hpp"
#include "tolerance/solvers/bayesopt.hpp"
#include "tolerance/solvers/cem.hpp"
#include "tolerance/solvers/de.hpp"
#include "tolerance/solvers/objective.hpp"
#include "tolerance/solvers/spsa.hpp"

int main(int argc, char** argv) {
  using namespace tolerance;
  bench::header("Fig. 7 — convergence of Algorithm 1", "Fig. 7");
  const int threads = bench::parse_threads(argc, argv);
  bench::print_threads(threads);
  const pomdp::NodeModel model(bench::paper_node_params(0.1));
  const auto obs = bench::paper_observation_model();
  const long budget = bench::scaled(400, 2000);

  for (int dr : {5, 15, 25, solvers::kNoBtr}) {
    std::cout << "-- DeltaR = " << (dr > 0 ? std::to_string(dr) : "inf")
              << " --\n";
    solvers::RecoveryObjective::Options opts;
    opts.episodes = 50;
    opts.horizon = dr > 0 ? std::max(100, 4 * dr) : 200;
    opts.seed = 11;
    opts.threads = threads;  // parallel episode sweeps inside each method
    const solvers::RecoveryObjective objective(model, obs, dr, opts);

    ConsoleTable table({"method", "progress (time s : best cost)"});
    const solvers::CrossEntropyMethod cem;
    const solvers::DifferentialEvolution de;
    const solvers::BayesianOptimization bo;
    const solvers::Spsa spsa;
    const std::vector<const solvers::ParametricOptimizer*> all{&cem, &de, &bo,
                                                               &spsa};
    for (const auto* opt : all) {
      Rng rng(5);
      const long b = opt->name() == "bo" ? std::min<long>(budget, 60) : budget;
      const auto result =
          opt->optimize(objective, objective.dimension(), b, rng);
      std::string progress;
      const std::size_t stride =
          std::max<std::size_t>(1, result.history.size() / 6);
      for (std::size_t i = 0; i < result.history.size(); i += stride) {
        progress += ConsoleTable::num(result.history[i].seconds, 2) + ":" +
                    ConsoleTable::num(result.history[i].best_value, 3) + "  ";
      }
      progress += "final " + ConsoleTable::num(result.best_value, 3);
      table.add_row({opt->name(), progress});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected shape: CEM/DE/BO curves decrease to a common "
               "plateau (the optimum);\nSPSA stays high (Table 8 gains).\n";
  return 0;
}
