// Fig. 6a: mean time to failure E[T(f)] as a function of the initial number
// of nodes N1, for pA in {0.1, 0.025, 0.01} (f = 3, k = 1, no recoveries).
// Fig. 6b: reliability curves R(t) = P[T(f) > t] for N1 in {25,50,100,200}.
// Both computed exactly with the Markov-chain machinery of Appendix F; the
// per-N1 chains are independent, so the sweeps shard across the
// ParallelRunner with results collected in row order.
#include <iostream>

#include "bench_common.hpp"
#include "tolerance/markov/chain.hpp"

int main(int argc, char** argv) {
  using namespace tolerance;
  const int f = 3;
  const int k = 1;
  const int min_nodes = 2 * f + 1 + k;  // Prop. 1: below this, failed
  const int threads = bench::parse_threads(argc, argv);
  const util::ParallelRunner runner(threads);

  bench::header("Fig. 6a — mean time to failure vs N1", "Fig. 6a");
  bench::print_threads(threads);
  {
    ConsoleTable table({"N1", "pA=0.1", "pA=0.025", "pA=0.01"});
    const std::vector<int> sizes{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
    const auto rows = runner.map<std::vector<std::string>>(
        static_cast<std::int64_t>(sizes.size()), [&](std::int64_t i) {
          const int n1 = sizes[static_cast<std::size_t>(i)];
          std::vector<std::string> row{std::to_string(n1)};
          for (double pa : {0.1, 0.025, 0.01}) {
            const double p_survive = (1.0 - pa) * (1.0 - 1e-5);
            const auto chain = markov::binomial_survival_chain(n1, p_survive);
            std::vector<bool> failed(static_cast<std::size_t>(n1) + 1, false);
            for (int s = 0; s < min_nodes && s <= n1; ++s) {
              failed[static_cast<std::size_t>(s)] = true;
            }
            const auto h = chain.mean_hitting_times(failed);
            row.push_back(
                ConsoleTable::num(h[static_cast<std::size_t>(n1)], 1));
          }
          return row;
        });
    for (const auto& row : rows) table.add_row(row);
    table.print(std::cout);
    std::cout << "\nExpected shape: MTTF grows with N1 and shrinks with pA"
                 " (cf. ~100-300 range at pA=0.01).\n";
  }

  bench::header("Fig. 6b — reliability curves R(t)", "Fig. 6b");
  {
    const double pa = 0.025;
    const double p_survive = (1.0 - pa) * (1.0 - 1e-5);
    ConsoleTable table({"t", "N1=25", "N1=50", "N1=100", "N1=200"});
    const int horizon = 100;
    const std::vector<int> sizes{25, 50, 100, 200};
    const auto curves = runner.map<std::vector<double>>(
        static_cast<std::int64_t>(sizes.size()), [&](std::int64_t i) {
          const int n1 = sizes[static_cast<std::size_t>(i)];
          const auto chain = markov::binomial_survival_chain(n1, p_survive);
          std::vector<bool> failed(static_cast<std::size_t>(n1) + 1, false);
          for (int s = 0; s < min_nodes; ++s) {
            failed[static_cast<std::size_t>(s)] = true;
          }
          std::vector<double> init(static_cast<std::size_t>(n1) + 1, 0.0);
          init[static_cast<std::size_t>(n1)] = 1.0;
          return chain.reliability_curve(init, failed, horizon);
        });
    for (int t = 10; t <= horizon; t += 10) {
      std::vector<std::string> row{std::to_string(t)};
      for (const auto& curve : curves) {
        row.push_back(
            ConsoleTable::num(curve[static_cast<std::size_t>(t)], 4));
      }
      table.add_row(row);
    }
    table.print(std::cout);
    std::cout << "\nExpected shape: R(t) decreasing in t; larger N1 keeps"
                 " R(t) near 1 for longer.\n";
  }
  return 0;
}
